"""The shared, seeded decision engine behind every fault wrapper.

One :class:`FaultController` serves all ranks of a run (and *all
attempts* of a retrying ``Session.run`` — that is the point: a ``crash``
spec fires exactly once per controller, so the restarted attempt replays
clean, like a real node that died and was replaced).  All state is
guarded by one lock; the per-rank random streams are derived from the
configured seed so a schedule replays identically for a fixed
``(seed, schedule, rank count)``.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, Optional, Tuple

from ..config import FaultConfig, FaultSpec
from ..smpi.exceptions import SmpiError

__all__ = ["FaultController", "InjectedCrash"]

#: Ops whose payload can be dropped (a swallowed send: the message is
#: simply never delivered, the receiver times out or fails over).
SEND_OPS = frozenset({"send", "isend", "Send"})


class InjectedCrash(SmpiError):
    """The fault injector killed this rank (``crash`` spec fired).

    Raised inside a communicator op on the victim rank; the SPMD executor
    then records the rank as failed (``World.fail_rank``) so peers
    unblock with :class:`~repro.smpi.exceptions.FailedRankError`.
    """

    def __init__(self, rank: int, op: str, nth: int) -> None:
        super().__init__(
            f"injected crash: rank {rank} killed at {op} call #{nth}"
        )
        self.rank = rank
        self.op = op
        self.nth = nth


class FaultController:
    """Schedule matcher + seeded randomness + injection bookkeeping.

    The wrapper calls :meth:`apply` before delegating an op; the
    controller sleeps (``delay``/``jitter``), raises
    (:class:`InjectedCrash`), or tells the wrapper to swallow the op
    (``drop`` — returns ``True``).
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._lock = threading.Lock()
        # (spec index, rank) -> how many calls matched this spec so far.
        self._matches: Dict[Tuple[int, int], int] = {}
        # spec index -> True once a crash spec has fired (fire-once).
        self._crash_fired: Dict[int, bool] = {}
        self._rngs: Dict[int, random.Random] = {}
        #: kind -> injections performed (the chaos report reads this).
        self.injected: Dict[str, int] = {
            "delay": 0,
            "jitter": 0,
            "drop": 0,
            "crash": 0,
        }

    def _rng(self, rank: int) -> random.Random:
        rng = self._rngs.get(rank)
        if rng is None:
            rng = random.Random((self.config.seed + 1) * 1_000_003 + rank)
            self._rngs[rank] = rng
        return rng

    def _record(self, kind: str) -> None:
        self.injected[kind] += 1
        from ..obs.runtime import state as obs_state

        st = obs_state()
        if st is not None and st.registry is not None:
            st.registry.counter(f"repro.faults.injected.{kind}").inc()

    def snapshot(self) -> Dict[str, int]:
        """Copy of the per-kind injection counts."""
        with self._lock:
            return dict(self.injected)

    def _firing(
        self, index: int, spec: FaultSpec, rank: int, op: str
    ) -> Optional[int]:
        """Match ``spec`` against this call; return the match ordinal when
        the spec fires, ``None`` otherwise.  Caller holds the lock."""
        if spec.rank != -1 and spec.rank != rank:
            return None
        if spec.op != "*" and spec.op != op:
            return None
        key = (index, rank)
        nth = self._matches.get(key, 0)
        self._matches[key] = nth + 1
        if nth < spec.at:
            return None
        if spec.count != -1 and nth >= spec.at + spec.count:
            return None
        if spec.kind == "crash" and self._crash_fired.get(index):
            return None
        if spec.probability < 1.0:
            if self._rng(rank).random() >= spec.probability:
                return None
        if spec.kind == "crash":
            self._crash_fired[index] = True
        return nth

    def apply(self, rank: int, op: str) -> bool:
        """Run the schedule against one op call on ``rank``.

        Returns ``True`` when the op must be *dropped* (swallowed send).
        Sleeps for delay/jitter faults; raises :class:`InjectedCrash` for
        a crash fault (after marking it fired, so the next attempt runs
        clean).
        """
        sleep_s = 0.0
        drop = False
        crash: Optional[InjectedCrash] = None
        with self._lock:
            for index, spec in enumerate(self.config.schedule):
                nth = self._firing(index, spec, rank, op)
                if nth is None:
                    continue
                if spec.kind == "delay":
                    sleep_s += spec.delay_s
                    self._record("delay")
                elif spec.kind == "jitter":
                    sleep_s += self._rng(rank).uniform(0.0, spec.delay_s)
                    self._record("jitter")
                elif spec.kind == "drop":
                    if op in SEND_OPS:
                        drop = True
                        self._record("drop")
                elif spec.kind == "crash" and crash is None:
                    crash = InjectedCrash(rank, op, nth)
                    self._record("crash")
        if sleep_s > 0.0:
            time.sleep(sleep_s)
        if crash is not None:
            raise crash
        return drop

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultController(seed={self.config.seed}, "
            f"specs={len(self.config.schedule)}, injected={self.injected})"
        )
