"""``repro.faults`` — deterministic fault injection for chaos testing.

The recovery machinery in this library (:class:`~repro.smpi.exceptions.
FailedRankError` fail-fast wakeups, ``Session.run(restart_policy=...)``
checkpoint/replay, serving failover) is only trustworthy if it is
exercised — this package injects the failures it must survive, *onto the
communicator*, where every distributed interaction funnels through.

It mirrors the :mod:`repro.obs` factory-observer design exactly:

* :class:`FaultyCommunicator` is a transparent proxy (the
  :class:`~repro.obs.comm.ObservedCommunicator` idiom) that consults a
  shared :class:`FaultController` before every communication op and
  injects the scheduled fault — sleep (``delay``/``jitter``), swallow a
  send (``drop``), or raise :class:`InjectedCrash` (``crash``);
* :func:`repro.faults.runtime.install` /
  :func:`~repro.faults.runtime.inject_communicator` are the refcounted
  process-global hooks the :mod:`repro.smpi` factories call — a no-op
  returning the raw communicator unless a fault plan is active, so
  normal runs pay nothing;
* the plan itself is the frozen, JSON-round-trippable
  :class:`~repro.config.FaultConfig` section of
  :class:`~repro.config.RunConfig`, so a chaos run is *configuration*,
  replayable from a seed.

Injected faults are metered as ``repro.faults.injected.<kind>`` counters
while :mod:`repro.obs` metrics are on, and the controller keeps its own
counts for the ``repro chaos`` recovery report.
"""

from .comm import FaultyCommunicator
from .controller import FaultController, InjectedCrash
from .runtime import (
    active,
    inject_communicator,
    install,
    state,
    uninstall,
)

__all__ = [
    "FaultController",
    "FaultyCommunicator",
    "InjectedCrash",
    "active",
    "inject_communicator",
    "install",
    "state",
    "uninstall",
]
