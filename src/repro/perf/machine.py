"""Machine models for the α-β communication / flop-rate cost model.

A :class:`MachineModel` provides the three numbers the scaling model needs
(per-rank effective flop rate, network latency α, network bandwidth β) plus
collective cost formulas.  Two presets ship:

* :data:`THETA_KNL` — parameters representative of the paper's machine
  (Argonne Theta: Intel KNL 7230 nodes, Cray Aries dragonfly).  Per-rank
  flop rate assumes one MPI rank per core with modest vectorised BLAS;
  α and β are published Aries figures.
* :data:`LAPTOP` — a generic single-node machine for local studies; the
  flop rate should be overridden by measurement
  (:func:`repro.perf.scaling.measure_effective_flops`).

Collective models (``p`` = ranks, ``m`` = bytes per contribution):

* ``gather``: rank-0-rooted linear fan-in (what the paper's plain
  ``comm.gather`` does for large unequal payloads): ``(p-1) (α + m β⁻¹)``.
* ``bcast``: binomial tree: ``ceil(log2 p) (α + m β⁻¹)``.
* ``p2p``: single message: ``α + m β⁻¹``.
"""

from __future__ import annotations

import dataclasses
import math

from ..exceptions import ConfigurationError

__all__ = ["MachineModel", "THETA_KNL", "LAPTOP"]


@dataclasses.dataclass(frozen=True)
class MachineModel:
    """α-β machine description.

    Attributes
    ----------
    name:
        Human-readable label.
    flops_per_second:
        Sustained per-rank flop rate for dense kernels (calibratable).
    latency_s:
        Point-to-point message latency α in seconds.
    bandwidth_bytes_per_s:
        Point-to-point bandwidth β in bytes/second.
    ranks_per_node:
        Used to convert rank counts to node counts in reports.
    """

    name: str
    flops_per_second: float
    latency_s: float
    bandwidth_bytes_per_s: float
    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.flops_per_second <= 0:
            raise ConfigurationError("flops_per_second must be positive")
        if self.latency_s < 0:
            raise ConfigurationError("latency_s must be nonnegative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if self.ranks_per_node <= 0:
            raise ConfigurationError("ranks_per_node must be positive")

    # -- primitive costs ------------------------------------------------------
    def compute_seconds(self, flops: float) -> float:
        """Time to execute ``flops`` floating-point operations."""
        if flops < 0:
            raise ConfigurationError(f"flops must be nonnegative, got {flops}")
        return flops / self.flops_per_second

    def p2p_seconds(self, nbytes: float) -> float:
        """One point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be nonnegative")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    # -- collective costs -----------------------------------------------------
    def gather_seconds(self, nranks: int, nbytes_per_rank: float) -> float:
        """Rooted linear gather of ``nbytes_per_rank`` from each non-root."""
        self._check_ranks(nranks)
        return (nranks - 1) * self.p2p_seconds(nbytes_per_rank)

    def bcast_seconds(self, nranks: int, nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` to all ranks."""
        self._check_ranks(nranks)
        if nranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(nranks))
        return rounds * self.p2p_seconds(nbytes)

    def nodes_for(self, nranks: int) -> float:
        """Node count corresponding to ``nranks`` at this machine's
        ranks-per-node density."""
        self._check_ranks(nranks)
        return nranks / self.ranks_per_node

    @staticmethod
    def _check_ranks(nranks: int) -> None:
        if nranks <= 0:
            raise ConfigurationError(f"nranks must be positive, got {nranks}")


#: Paper machine: Theta (Intel Xeon Phi 7230 "Knights Landing", 64 cores,
#: Cray Aries).  Per-rank rate assumes 1 rank/core at ~8 GFLOP/s sustained
#: dense-kernel throughput; Aries: ~1.2 us latency, ~8 GB/s effective
#: per-rank bandwidth.
THETA_KNL = MachineModel(
    name="theta-knl",
    flops_per_second=8.0e9,
    latency_s=1.2e-6,
    bandwidth_bytes_per_s=8.0e9,
    ranks_per_node=64,
)

#: Generic single node; calibrate the flop rate by measurement.
LAPTOP = MachineModel(
    name="laptop",
    flops_per_second=2.0e9,
    latency_s=5.0e-7,
    bandwidth_bytes_per_s=1.0e10,
    ranks_per_node=8,
)
