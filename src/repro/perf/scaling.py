"""Weak-scaling study (reproduction of paper Figure 1c).

The paper: "Preliminary weak scaling results ... with 1024 grid-points per
rank of Theta ... upto 256 nodes" (= 16384 ranks at 64 ranks/node), for the
"parallelized and randomized SVD without the utilization of the streaming
operation", i.e. one APMOS factorization per measurement.

The study combines:

1. a **measured** per-rank compute time — the actual local kernels
   (:func:`measure_local_compute`) run on this machine at the weak-scaling
   local problem size, which is constant in ``p`` by construction;
2. a **modelled** rank-0 SVD time from flop counts and a **measured**
   effective flop rate (:func:`measure_effective_flops`), because the
   gathered ``W`` grows with ``p`` and cannot be run at 16384 ranks here;
3. a **modelled** communication time from the exact APMOS traffic formulas
   and the machine's α-β parameters.

For runnable rank counts, :meth:`WeakScalingStudy.validate_traffic` executes
the real algorithm under :class:`repro.smpi.CommTracer` and asserts the
modelled byte counts equal the recorded ones — the part of the model that
*can* be checked exactly, is.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Sequence

import numpy as np

from ..core.apmos import apmos_svd, generate_right_vectors
from ..exceptions import ConfigurationError
from ..smpi import run_spmd
from ..utils.rng import resolve_rng
from .costs import (
    apmos_local_flops,
    apmos_root_svd_flops,
    apmos_traffic,
    flops_gemm,
)
from .machine import MachineModel, THETA_KNL

__all__ = [
    "ScalingPoint",
    "ScalingResult",
    "WeakScalingStudy",
    "StrongScalingStudy",
    "measure_local_compute",
    "measure_effective_flops",
]

#: Paper's weak-scaling local problem size: 1024 grid points per rank.
PAPER_POINTS_PER_RANK = 1024


def measure_effective_flops(
    size: int = 256, repeats: int = 3, rng=None
) -> float:
    """Measure an effective dense-kernel flop rate via a square GEMM.

    Used to convert modelled flop counts into seconds on *this* machine so
    the simulated curve and any locally measured points share units.
    """
    if size <= 0 or repeats <= 0:
        raise ConfigurationError("size and repeats must be positive")
    gen = resolve_rng(rng)
    a = gen.standard_normal((size, size))
    b = gen.standard_normal((size, size))
    a @ b  # warm-up (BLAS thread spin-up, page faults)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    return flops_gemm(size, size, size) / best


def measure_local_compute(
    m_local: int,
    n: int,
    r1: int,
    k: int,
    repeats: int = 3,
    rng=None,
) -> float:
    """Time one rank's local APMOS work at the weak-scaling problem size.

    Runs the real kernels (right-vector generation + mode assembly) on
    synthetic data; returns the best-of-``repeats`` wall time in seconds.
    """
    if repeats <= 0:
        raise ConfigurationError("repeats must be positive")
    gen = resolve_rng(rng)
    a_local = gen.standard_normal((m_local, n))
    x = gen.standard_normal((n, min(k, n)))
    lam = np.abs(gen.standard_normal(min(k, n))) + 1.0
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        generate_right_vectors(a_local, r1)
        (a_local @ x) / lam[np.newaxis, :]
        best = min(best, time.perf_counter() - start)
    return best


@dataclasses.dataclass(frozen=True)
class ScalingPoint:
    """One point of a scaling curve, with its cost breakdown (seconds)."""

    ranks: int
    nodes: float
    compute_s: float
    root_svd_s: float
    gather_s: float
    bcast_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.root_svd_s + self.gather_s + self.bcast_s


@dataclasses.dataclass(frozen=True)
class ScalingResult:
    """A full scaling curve plus the ideal trend."""

    points: List[ScalingPoint]

    @property
    def ranks(self) -> np.ndarray:
        return np.array([p.ranks for p in self.points])

    @property
    def times(self) -> np.ndarray:
        return np.array([p.total_s for p in self.points])

    @property
    def ideal(self) -> np.ndarray:
        """Flat ideal weak-scaling trend anchored at the smallest rank count."""
        return np.full(len(self.points), self.points[0].total_s)

    @property
    def efficiency(self) -> np.ndarray:
        """Per-point weak-scaling efficiency ``t_1 / t_p``."""
        return self.ideal / self.times


class WeakScalingStudy:
    """Reproduce the Figure 1(c) weak-scaling study.

    Parameters
    ----------
    points_per_rank:
        Grid points per rank (paper: 1024).
    n_snapshots:
        Snapshot count (paper's Burgers case: 800).
    k:
        Global modes retained.
    r1:
        APMOS local truncation.
    machine:
        Machine model; defaults to the Theta-KNL preset.
    calibrate:
        Measure the local compute term and effective flop rate on this
        machine (True, default) or derive both from the machine model's
        nominal flop rate (False — fully analytic, deterministic).
    """

    def __init__(
        self,
        points_per_rank: int = PAPER_POINTS_PER_RANK,
        n_snapshots: int = 800,
        k: int = 10,
        r1: int = 50,
        machine: MachineModel = THETA_KNL,
        calibrate: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        if points_per_rank <= 0 or n_snapshots <= 0:
            raise ConfigurationError(
                "points_per_rank and n_snapshots must be positive"
            )
        self.points_per_rank = points_per_rank
        self.n_snapshots = n_snapshots
        self.k = k
        self.r1 = r1
        self.machine = machine
        self.seed = seed
        if calibrate:
            self._flops_rate = measure_effective_flops(rng=seed)
            self._compute_s = measure_local_compute(
                points_per_rank, n_snapshots, r1, k, rng=seed
            )
        else:
            self._flops_rate = machine.flops_per_second
            self._compute_s = (
                apmos_local_flops(points_per_rank, n_snapshots, r1, k)
                / machine.flops_per_second
            )

    # -- model ------------------------------------------------------------
    def point(
        self, ranks: int, group_size: Optional[int] = None
    ) -> ScalingPoint:
        """Modelled cost breakdown of one APMOS step at ``ranks`` ranks.

        ``group_size`` models the two-level hierarchical variant
        (:func:`repro.core.apmos.apmos_svd_two_level`): the ``W`` gather
        happens in two stages (members -> leader, leaders -> root) and the
        root SVD width shrinks from ``r1 * p`` to ``r1 * ceil(p / g)``;
        each leader additionally pays a group-SVD of width
        ``r1 * group_size``.
        """
        traffic = apmos_traffic(ranks, self.n_snapshots, self.r1, self.k)
        if group_size is None or group_size <= 1 or group_size >= ranks:
            root_flops = apmos_root_svd_flops(
                ranks, self.n_snapshots, self.r1, self.k, randomized=True
            )
            gather_s = self.machine.gather_seconds(
                ranks, traffic.gather_bytes_per_rank
            )
            svd_s = root_flops / self._flops_rate
        else:
            n_groups = -(-ranks // group_size)  # ceil division
            # stage 1 (concurrent across groups): member->leader gather and
            # the leader's group SVD of an N x (r1 * g) stack
            stage1_gather = self.machine.gather_seconds(
                group_size, traffic.gather_bytes_per_rank
            )
            group_flops = apmos_root_svd_flops(
                group_size, self.n_snapshots, self.r1, self.k, randomized=True
            )
            # stage 2: leaders -> root gather and the narrower root SVD
            stage2_gather = self.machine.gather_seconds(
                n_groups, traffic.gather_bytes_per_rank
            )
            root_flops = apmos_root_svd_flops(
                n_groups, self.n_snapshots, self.r1, self.k, randomized=True
            )
            gather_s = stage1_gather + stage2_gather
            svd_s = (group_flops + root_flops) / self._flops_rate
        return ScalingPoint(
            ranks=ranks,
            nodes=self.machine.nodes_for(ranks),
            compute_s=self._compute_s,
            root_svd_s=svd_s,
            gather_s=gather_s,
            bcast_s=self.machine.bcast_seconds(ranks, traffic.bcast_bytes),
        )

    def run(
        self, rank_counts: Sequence[int], group_size: Optional[int] = None
    ) -> ScalingResult:
        """Evaluate the model over ``rank_counts`` (ascending)."""
        counts = [int(c) for c in rank_counts]
        if not counts or any(c <= 0 for c in counts):
            raise ConfigurationError("rank_counts must be positive and non-empty")
        if sorted(counts) != counts:
            raise ConfigurationError("rank_counts must be ascending")
        return ScalingResult(
            points=[self.point(c, group_size=group_size) for c in counts]
        )

    def paper_rank_counts(self, max_nodes: int = 256) -> List[int]:
        """Powers-of-two rank counts up to ``max_nodes`` full nodes."""
        if max_nodes <= 0:
            raise ConfigurationError("max_nodes must be positive")
        limit = max_nodes * self.machine.ranks_per_node
        counts = []
        c = 1
        while c <= limit:
            counts.append(c)
            c *= 2
        return counts

    # -- validation against the real runtime --------------------------------
    def validate_traffic(self, ranks: int) -> dict:
        """Run real APMOS at ``ranks`` ranks under the tracer and compare
        recorded byte counts with the model's formulas.

        Returns a dict with modelled and measured gather/bcast bytes; the
        tests assert they agree exactly.
        """
        m_local, n, r1, k, seed = (
            self.points_per_rank,
            self.n_snapshots,
            self.r1,
            self.k,
            self.seed,
        )

        def job(comm):
            gen = resolve_rng(None if seed is None else seed + comm.rank)
            a_local = gen.standard_normal((m_local, n))
            apmos_svd(comm, a_local, r1=r1, r2=k)
            return None

        _, tracers = run_spmd(ranks, job, trace=True)
        measured_gather_root = tracers[0].bytes_for("gather")
        measured_bcast_nonroot = (
            tracers[1].bytes_for("bcast") if ranks > 1 else 0
        )
        traffic = apmos_traffic(ranks, n, r1, k)
        return {
            "model_gather_root": traffic.gather_bytes_root_total,
            "measured_gather_root": measured_gather_root,
            # a single rank broadcasts nothing; the per-receiver payload
            # formula only applies at p > 1
            "model_bcast": traffic.bcast_bytes if ranks > 1 else 0,
            "measured_bcast": measured_bcast_nonroot,
        }


class StrongScalingStudy:
    """Strong scaling: a *fixed* global problem split over growing ranks.

    Complements the paper's weak-scaling study (Figure 1c).  Under strong
    scaling the per-rank block shrinks as ``M / p``, so the local compute
    term falls like ``1/p`` while the gathered ``W`` and rank-0 SVD still
    grow with ``p`` — the classic strong-scaling wall.  Expected shape:
    near-linear speedup while local work dominates, then a turnover where
    adding ranks makes the step *slower*.

    Parameters mirror :class:`WeakScalingStudy` except the problem size is
    global (``n_dof`` total grid points).
    """

    def __init__(
        self,
        n_dof: int = 262144,
        n_snapshots: int = 800,
        k: int = 10,
        r1: int = 50,
        machine: MachineModel = THETA_KNL,
        calibrate: bool = True,
        seed: Optional[int] = 0,
    ) -> None:
        if n_dof <= 0 or n_snapshots <= 0:
            raise ConfigurationError("n_dof and n_snapshots must be positive")
        self.n_dof = n_dof
        self.n_snapshots = n_snapshots
        self.k = k
        self.r1 = r1
        self.machine = machine
        self.seed = seed
        if calibrate:
            self._flops_rate = measure_effective_flops(rng=seed)
            # measure at a moderate block size and scale by the flop model;
            # measuring every p directly would defeat the point of a model
            probe_rows = max(min(n_dof, 4096), 1)
            probe_time = measure_local_compute(
                probe_rows, n_snapshots, r1, k, rng=seed
            )
            probe_flops = apmos_local_flops(probe_rows, n_snapshots, r1, k)
            self._local_rate = probe_flops / probe_time
        else:
            self._flops_rate = machine.flops_per_second
            self._local_rate = machine.flops_per_second

    def point(self, ranks: int) -> ScalingPoint:
        """Modelled cost of one APMOS step with ``n_dof / ranks`` local rows."""
        if ranks <= 0:
            raise ConfigurationError(f"ranks must be positive, got {ranks}")
        m_local = max(self.n_dof // ranks, 1)
        local_flops = apmos_local_flops(
            m_local, self.n_snapshots, self.r1, self.k
        )
        traffic = apmos_traffic(ranks, self.n_snapshots, self.r1, self.k)
        root_flops = apmos_root_svd_flops(
            ranks, self.n_snapshots, self.r1, self.k, randomized=True
        )
        return ScalingPoint(
            ranks=ranks,
            nodes=self.machine.nodes_for(ranks),
            compute_s=local_flops / self._local_rate,
            root_svd_s=root_flops / self._flops_rate,
            gather_s=self.machine.gather_seconds(
                ranks, traffic.gather_bytes_per_rank
            ),
            bcast_s=self.machine.bcast_seconds(ranks, traffic.bcast_bytes),
        )

    def run(self, rank_counts: Sequence[int]) -> ScalingResult:
        """Evaluate the model over ``rank_counts`` (ascending)."""
        counts = [int(c) for c in rank_counts]
        if not counts or any(c <= 0 for c in counts):
            raise ConfigurationError(
                "rank_counts must be positive and non-empty"
            )
        if sorted(counts) != counts:
            raise ConfigurationError("rank_counts must be ascending")
        return ScalingResult(points=[self.point(c) for c in counts])

    def speedups(self, result: ScalingResult) -> np.ndarray:
        """Speedup over the smallest rank count, ``t_base / t_p``."""
        return result.points[0].total_s / result.times

    def turnover_ranks(self, max_ranks: int = 1 << 20) -> int:
        """Smallest power-of-two rank count at which adding ranks stops
        helping (the strong-scaling wall)."""
        prev = self.point(1).total_s
        ranks = 2
        while ranks <= max_ranks:
            cur = self.point(ranks).total_s
            if cur >= prev:
                return ranks // 2
            prev = cur
            ranks *= 2
        return max_ranks
