"""Performance modelling: the stand-in for the paper's Theta runs.

The weak-scaling experiment of Figure 1(c) ran on up to 256 nodes of the
Theta KNL machine.  Offline and single-node, we reproduce its *shape* with a
calibrated analytic model:

* the **compute term** is measured by timing the actual local kernels on
  this machine (:func:`repro.perf.scaling.measure_local_compute`) — under
  weak scaling it is constant per rank by construction;
* the **communication term** uses the classic α-β (latency-bandwidth) model
  with message sizes given by the exact traffic formulas of APMOS
  (:mod:`repro.perf.costs`); those formulas are validated against byte
  counts recorded by :class:`repro.smpi.CommTracer` on runnable rank counts;
* the **root-SVD term** (the ``W`` factorization at rank 0, whose width
  grows linearly with the rank count) uses flop counts divided by a
  measured effective flop rate.
"""

from .costs import (
    ApmosTraffic,
    apmos_root_svd_flops,
    apmos_traffic,
    flops_gemm,
    flops_qr,
    flops_svd,
)
from .machine import MachineModel, THETA_KNL, LAPTOP
from .scaling import (
    ScalingPoint,
    ScalingResult,
    StrongScalingStudy,
    WeakScalingStudy,
    measure_effective_flops,
    measure_local_compute,
)

__all__ = [
    "MachineModel",
    "THETA_KNL",
    "LAPTOP",
    "flops_qr",
    "flops_svd",
    "flops_gemm",
    "apmos_traffic",
    "ApmosTraffic",
    "apmos_root_svd_flops",
    "WeakScalingStudy",
    "StrongScalingStudy",
    "ScalingPoint",
    "ScalingResult",
    "measure_local_compute",
    "measure_effective_flops",
]
