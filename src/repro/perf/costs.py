"""Analytic flop and traffic formulas for the distributed SVD kernels.

These formulas are the backbone of the weak-scaling reproduction: the
traffic side is *exact* (and validated against
:class:`repro.smpi.CommTracer` byte counts in the tests), the flop side uses
the standard dense-kernel counts (Golub & Van Loan).

Notation: one APMOS step at ``p`` ranks, each owning ``m_local x n`` data,
local truncation ``r1``, ``k`` global modes, ``itemsize``-byte reals.
"""

from __future__ import annotations

import dataclasses

from ..exceptions import ConfigurationError

__all__ = [
    "flops_qr",
    "flops_svd",
    "flops_gemm",
    "flops_eigh",
    "ApmosTraffic",
    "apmos_traffic",
    "apmos_local_flops",
    "apmos_root_svd_flops",
]


def _positive(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value <= 0:
            raise ConfigurationError(f"{name} must be positive, got {value}")


def flops_qr(m: int, n: int) -> float:
    """Householder economy QR of an ``m x n`` matrix (``m >= n``):
    ``2 m n^2 - (2/3) n^3``."""
    _positive(m=m, n=n)
    return 2.0 * m * n * n - (2.0 / 3.0) * n**3


def flops_svd(m: int, n: int) -> float:
    """Economy SVD (Golub-Reinsch style) of ``m x n``, ``m >= n``:
    ``~ 6 m n^2 + 20 n^3`` (constant factors vary by driver; the model only
    needs the scaling)."""
    _positive(m=m, n=n)
    if m < n:
        m, n = n, m
    return 6.0 * m * n * n + 20.0 * n**3


def flops_gemm(m: int, n: int, k: int) -> float:
    """Dense ``(m x k) @ (k x n)`` multiply: ``2 m n k``."""
    _positive(m=m, n=n, k=k)
    return 2.0 * m * n * k


def flops_eigh(n: int) -> float:
    """Symmetric eigendecomposition of ``n x n``: ``~ 9 n^3``."""
    _positive(n=n)
    return 9.0 * n**3


@dataclasses.dataclass(frozen=True)
class ApmosTraffic:
    """Per-step APMOS message sizes (bytes).

    Attributes
    ----------
    gather_bytes_per_rank:
        ``W_i`` contribution each non-root rank sends: ``n * r1 * itemsize``.
    gather_bytes_root_total:
        Total received at rank 0: ``(p - 1) * n * r1 * itemsize``.
    bcast_bytes:
        Broadcast payload: ``X`` (``n * k``) plus ``Lambda`` (``k``) values.
    """

    gather_bytes_per_rank: int
    gather_bytes_root_total: int
    bcast_bytes: int


def apmos_traffic(
    p: int, n: int, r1: int, k: int, itemsize: int = 8
) -> ApmosTraffic:
    """Exact APMOS traffic for one factorization at ``p`` ranks.

    ``r1`` (and ``k``) are clipped to ``n`` — a rank can never contribute
    more right vectors than there are snapshots — mirroring the clipping the
    implementation applies.
    """
    _positive(p=p, n=n, r1=r1, k=k, itemsize=itemsize)
    r1_eff = min(r1, n)
    k_eff = min(k, n)
    per_rank = n * r1_eff * itemsize
    return ApmosTraffic(
        gather_bytes_per_rank=per_rank,
        gather_bytes_root_total=(p - 1) * per_rank,
        bcast_bytes=(n * k_eff + k_eff) * itemsize,
    )


def apmos_local_flops(
    m_local: int, n: int, r1: int, k: int, method: str = "mos"
) -> float:
    """Per-rank local work of one APMOS step.

    ``method='mos'``: Gram matrix (``2 m n^2``) + ``n x n`` eigh + mode
    assembly GEMM (``2 m n k``).
    ``method='svd'``: economy SVD of the local block + assembly GEMM.
    """
    _positive(m_local=m_local, n=n, r1=r1, k=k)
    if method == "mos":
        local = flops_gemm(n, n, m_local) + flops_eigh(n)
    elif method == "svd":
        local = flops_svd(m_local, n)
    else:
        raise ConfigurationError(f"unknown method {method!r}")
    assembly = flops_gemm(m_local, min(k, n), n)
    return local + assembly


def apmos_root_svd_flops(
    p: int, n: int, r1: int, k: int, randomized: bool = True
) -> float:
    """Rank-0 factorization of the gathered ``W`` (``n x (r1 p)``).

    This is the term that breaks ideal weak scaling: the width of ``W``
    grows linearly with the rank count.  Randomized: sketch + projection +
    small SVD, ``O(n * r1 p * k)``; dense: economy SVD, ``O(n * (r1 p)^2)``
    — the model shows why the paper pairs APMOS with randomization at
    scale.
    """
    _positive(p=p, n=n, r1=r1, k=k)
    width = min(r1, n) * p
    if randomized:
        sketch = flops_gemm(n, min(k, n), width)  # A @ Omega
        qr = flops_qr(n, min(k, n))
        project = flops_gemm(min(k, n), width, n)  # Q^T A
        small = flops_svd(width, min(k, n))
        lift = flops_gemm(n, min(k, n), min(k, n))
        return sketch + qr + project + small + lift
    return flops_svd(max(n, width), min(n, width))
