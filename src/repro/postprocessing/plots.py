"""ASCII plotting and CSV export.

Every figure of the paper maps onto one of three primitives:

* :func:`ascii_lineplot` — 1-D series (mode shapes, spectra, scaling curves);
* :func:`ascii_field` — 2-D scalar fields (the ERA5 pressure modes);
* :func:`save_series_csv` — the underlying numbers, for external plotting.
"""

from __future__ import annotations

import pathlib
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "ascii_lineplot",
    "ascii_field",
    "plot_singular_values",
    "plot_1d_modes",
    "plot_mode_comparison",
    "save_series_csv",
]

_SHADES = " .:-=+*#%@"


def ascii_lineplot(
    series: Dict[str, np.ndarray],
    width: int = 72,
    height: int = 18,
    title: str = "",
    logy: bool = False,
) -> str:
    """Render one or more 1-D series as an ASCII chart.

    Series are resampled to ``width`` columns; each gets a distinct marker.
    ``logy`` plots ``log10`` of the (positive) values — nonpositive entries
    are dropped from the scaling and drawn at the bottom row.
    """
    if not series:
        raise ShapeError("ascii_lineplot needs at least one series")
    if width < 8 or height < 4:
        raise ShapeError("plot must be at least 8x4 characters")
    markers = "*o+x@#$%"
    grid = [[" "] * width for _ in range(height)]

    prepared = {}
    finite_vals = []
    for name, values in series.items():
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            raise ShapeError(f"series {name!r} is empty")
        if logy:
            with np.errstate(divide="ignore", invalid="ignore"):
                values = np.where(values > 0, np.log10(values), np.nan)
        prepared[name] = values
        finite_vals.append(values[np.isfinite(values)])
    all_vals = (
        np.concatenate([v for v in finite_vals if v.size])
        if any(v.size for v in finite_vals)
        else np.array([0.0])
    )
    lo = float(np.min(all_vals)) if all_vals.size else 0.0
    hi = float(np.max(all_vals)) if all_vals.size else 1.0
    if hi == lo:
        hi = lo + 1.0

    for idx, (name, values) in enumerate(prepared.items()):
        marker = markers[idx % len(markers)]
        xs = np.linspace(0, values.size - 1, width)
        resampled = np.interp(xs, np.arange(values.size), values)
        for col, val in enumerate(resampled):
            if not np.isfinite(val):
                row = height - 1
            else:
                frac = (val - lo) / (hi - lo)
                row = height - 1 - int(round(frac * (height - 1)))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.3e}" + (" (log10)" if logy else "")
    lines.append(top_label)
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f"{lo:.3e}" + (" (log10)" if logy else ""))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(prepared)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_field(
    field: np.ndarray,
    width: int = 72,
    height: int = 24,
    title: str = "",
) -> str:
    """Render a 2-D scalar field as shaded ASCII (the Figure 2 view)."""
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ShapeError(f"field must be 2-D, got ndim={field.ndim}")
    rows = np.linspace(0, field.shape[0] - 1, height).astype(int)
    cols = np.linspace(0, field.shape[1] - 1, width).astype(int)
    sampled = field[np.ix_(rows, cols)]
    lo, hi = float(np.min(sampled)), float(np.max(sampled))
    span = hi - lo if hi > lo else 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"max={hi:+.3e}")
    for r in range(height):
        chars = []
        for c in range(width):
            frac = (sampled[r, c] - lo) / span
            chars.append(_SHADES[min(int(frac * len(_SHADES)), len(_SHADES) - 1)])
        lines.append("".join(chars))
    lines.append(f"min={lo:+.3e}")
    return "\n".join(lines)


def plot_singular_values(
    singular_values: np.ndarray, title: str = "singular values", **kwargs
) -> str:
    """Log-scale spectrum plot (the postprocessing call of the paper)."""
    return ascii_lineplot(
        {"sigma": np.asarray(singular_values)}, title=title, logy=True, **kwargs
    )


def plot_1d_modes(
    modes: np.ndarray,
    mode_indices: Sequence[int] = (0, 1),
    title: str = "modes",
    **kwargs,
) -> str:
    """Plot selected 1-D mode shapes on one chart."""
    modes = np.asarray(modes)
    if modes.ndim != 2:
        raise ShapeError("modes must be 2-D")
    series = {}
    for index in mode_indices:
        if not (0 <= index < modes.shape[1]):
            raise ShapeError(
                f"mode index {index} outside [0, {modes.shape[1]})"
            )
        series[f"mode{index + 1}"] = modes[:, index]
    return ascii_lineplot(series, title=title, **kwargs)


def plot_mode_comparison(
    reference: np.ndarray,
    candidate: np.ndarray,
    mode: int,
    labels: Sequence[str] = ("serial", "parallel"),
    **kwargs,
) -> str:
    """Overlay one mode from two computations (the Figure 1a/1b view)."""
    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    if reference.shape != candidate.shape:
        raise ShapeError(
            f"mode arrays must share shape, got {reference.shape} vs "
            f"{candidate.shape}"
        )
    from ..utils.linalg import align_signs

    aligned = align_signs(reference, candidate)
    return ascii_lineplot(
        {
            labels[0]: reference[:, mode],
            labels[1]: aligned[:, mode],
        },
        title=f"mode {mode + 1}: {labels[0]} vs {labels[1]}",
        **kwargs,
    )


def save_series_csv(
    path: Union[str, pathlib.Path],
    columns: Dict[str, np.ndarray],
) -> pathlib.Path:
    """Dump named, equal-length 1-D series as a CSV file."""
    if not columns:
        raise ShapeError("save_series_csv needs at least one column")
    arrays = {k: np.asarray(v).ravel() for k, v in columns.items()}
    lengths = {v.shape[0] for v in arrays.values()}
    if len(lengths) != 1:
        raise ShapeError(f"columns have differing lengths: {sorted(lengths)}")
    path = pathlib.Path(path)
    header = ",".join(arrays)
    stacked = np.column_stack(list(arrays.values()))
    np.savetxt(path, stacked, delimiter=",", header=header, comments="")
    return path
