"""Text tables and experiment reports."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

import numpy as np

from ..exceptions import ShapeError

__all__ = ["format_table", "scaling_report"]

Cell = Union[str, int, float]


def _fmt(cell: Cell) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, (int, np.integer)):
        return str(int(cell))
    if isinstance(cell, (float, np.floating)):
        value = float(cell)
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Cell]]) -> str:
    """Render an aligned monospace table.

    >>> print(format_table(["p", "t"], [[1, 0.5], [2, 0.51]]))
    p  t
    -  ----
    1  0.5
    2  0.51
    """
    if not headers:
        raise ShapeError("format_table needs at least one column")
    rendered = [[_fmt(c) for c in row] for row in rows]
    for i, row in enumerate(rendered):
        if len(row) != len(headers):
            raise ShapeError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[j]) for r in rendered)) if rendered else len(h)
        for j, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths).rstrip(),
    ]
    for row in rendered:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def scaling_report(
    ranks: Sequence[int],
    times: Sequence[float],
    label: str = "weak scaling",
) -> str:
    """Format a scaling study with ideal-trend and efficiency columns.

    For weak scaling the ideal time is flat (the time at the smallest rank
    count); efficiency is ``t_ideal / t_p``.
    """
    ranks = list(ranks)
    times = [float(t) for t in times]
    if len(ranks) != len(times) or not ranks:
        raise ShapeError("ranks and times must be equal-length, non-empty")
    base = times[0]
    rows: List[List[Cell]] = []
    for p, t in zip(ranks, times):
        efficiency = base / t if t > 0 else float("nan")
        rows.append([p, t, base, efficiency])
    table = format_table(
        ["ranks", "time_s", "ideal_s", "efficiency"], rows
    )
    return f"{label}\n{table}"
