"""Postprocessing: plotting and reporting (paper section 4).

The paper ships a ``postprocessing`` module for visualising singular values
and SVD modes, linked to the base class.  Matplotlib is unavailable in this
environment, so plots render as ASCII (terminal-friendly, diffable in
tests) and every plotting call can also dump its series to CSV for external
tooling.
"""

from .plots import (
    ascii_field,
    ascii_lineplot,
    plot_1d_modes,
    plot_mode_comparison,
    plot_singular_values,
    save_series_csv,
)
from .report import format_table, scaling_report

__all__ = [
    "ascii_lineplot",
    "ascii_field",
    "plot_singular_values",
    "plot_1d_modes",
    "plot_mode_comparison",
    "save_series_csv",
    "format_table",
    "scaling_report",
]
