"""``repro.api`` — the one public entry point for every SVD driver.

Four layers of this reproduction accreted their own construction idioms
(communicator factories, driver kwargs, prefetch wiring, checkpoint and
serving plumbing).  This module is the stable, typed boundary over all of
them:

* :class:`~repro.config.RunConfig` — one frozen, validated value
  describing a whole run: the algorithm (:class:`~repro.config.
  SolverConfig`), the communicator substrate (:class:`~repro.config.
  BackendConfig`) and the batch source (:class:`~repro.config.
  StreamConfig`).  Round-trips through JSON, embeds into checkpoints.
* :class:`Session` — a context manager that owns the communicator
  lifecycle, builds the driver, wires prefetch/partitioning/overlap, and
  exposes the whole workflow: :meth:`~Session.fit_stream`,
  :meth:`~Session.result`, :meth:`~Session.save_checkpoint`,
  :meth:`~Session.export_to_store`, :meth:`~Session.query_engine`, and
  :meth:`~Session.resume`.

Quickstart — stream a matrix on 4 in-process ranks::

    from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig

    cfg = RunConfig(
        solver=SolverConfig(K=10, ff=0.95),
        backend=BackendConfig(name="threads", size=4),
        stream=StreamConfig(batch=100),
    )

    def job(session):
        session.fit_stream(data)           # rows partitioned per rank
        return session.result()

    results = Session.run(cfg, job)        # rank-ordered SessionResults
    modes = results[0].modes

Single-rank sessions (``backend="self"``, or any backend of size 1) can
be used directly as context managers::

    with Session(cfg) as session:
        session.fit_stream(data)
        res = session.result()

and under a real MPI launcher each process adopts its own communicator::

    with Session(cfg, comm=create_communicator("mpi4py")) as session:
        ...
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Any, Callable, Iterable, List, Optional, Union

import numpy as np

from .config import (
    BackendConfig,
    ObservabilityConfig,
    RunConfig,
    SolverConfig,
    StreamConfig,
)
from .core.checkpoint import (
    normalize_checkpoint_path,
    rank_checkpoint_path,
    read_checkpoint,
)
from .core.parallel import ParSVDParallel
from .data.streams import PrefetchStream, SnapshotStream, array_stream, dataset_stream
from .exceptions import ConfigurationError, DataFormatError
from .obs import runtime as _obs
from .smpi.factory import create_communicator, run_backend
from .utils.partition import block_partition

__all__ = [
    "BackendConfig",
    "ObservabilityConfig",
    "RunConfig",
    "Session",
    "SessionResult",
    "SolverConfig",
    "StreamConfig",
    "checkpoint_run_config",
    "load_run_config",
]

PathLike = Union[str, pathlib.Path]


def load_run_config(path: PathLike) -> RunConfig:
    """Load and validate a :class:`RunConfig` JSON file.

    Raises :class:`~repro.exceptions.ConfigurationError` naming the
    offending section/key on any mismatch — what ``repro config
    validate`` surfaces.
    """
    return RunConfig.load(path)


def checkpoint_run_config(path: PathLike) -> RunConfig:
    """The :class:`RunConfig` a checkpoint resumes under.

    Prefers the typed config embedded by the :class:`Session` layer
    (``run_config`` payload, any kind); for a checkpoint written through
    the legacy driver API it is reconstructed from the recorded solver
    fields, with the default backend at the checkpoint's rank count.
    Accepts the same ``path`` spellings as
    :meth:`~repro.core.parallel.ParSVDParallel.from_checkpoint`
    (a gathered single file or the per-rank shard family's base path).
    """
    candidates = [normalize_checkpoint_path(path), rank_checkpoint_path(path, 0)]
    state = None
    errors = []
    for candidate in candidates:
        if not candidate.exists():
            continue
        try:
            state = read_checkpoint(candidate, load_arrays=False)
            break
        except DataFormatError as exc:
            errors.append(str(exc))
    if state is None:
        detail = f" ({'; '.join(errors)})" if errors else ""
        raise DataFormatError(
            f"{path}: no readable checkpoint at "
            f"{' or '.join(str(c) for c in candidates)}{detail}"
        )
    if state["run_config"] is not None:
        return state["run_config"]
    # Legacy checkpoint: the same flat-field reconstruction the driver's
    # own restart path uses (one shared helper, no drift between them).
    solver = ParSVDParallel._restored_solver(state, None, None, None)
    nranks = max(int(state["nranks"]), 1)
    return RunConfig(solver=solver, backend=BackendConfig(size=nranks))


@dataclasses.dataclass(frozen=True)
class SessionResult:
    """What a finished (or checkpointed) session computed.

    ``modes`` follows the solver's gather policy: the global mode matrix
    under ``"bcast"`` (all ranks) and ``"root"`` (rank 0; ``None``
    elsewhere), this rank's local block under ``"none"``.  Arrays may be
    read-only zero-copy snapshots shared between ranks — copy before
    mutating.
    """

    modes: Optional[np.ndarray]
    singular_values: np.ndarray
    iteration: int
    n_seen: int


class Session:
    """Owns one run end to end: communicator, driver, streams, lifecycle.

    Parameters
    ----------
    config:
        The :class:`~repro.config.RunConfig` to run (default: all
        defaults).
    comm:
        Adopt an existing communicator (one rank of an SPMD job, or a
        wrapped ``mpi4py`` world) instead of creating one.  Without it
        the session creates — and owns — the communicator described by
        ``config.backend``; the multi-rank ``"threads"`` backend needs
        one session *per rank*, so create those through :meth:`run`.
    solver, backend, stream, obs:
        Section shortcuts: ``Session(solver=SolverConfig(K=8))`` is
        ``Session(RunConfig(solver=SolverConfig(K=8)))``; when both a
        ``config`` and a section are given, the section replaces the
        config's.

    With ``config.obs`` enabled the session installs process-global
    observability (:mod:`repro.obs`) for its lifetime: every
    communicator op is metered, the pipelined engine reports its
    ``overlap_efficiency`` gauge, and (with ``obs.trace``) phase spans
    accumulate on the tracer.  Read them through :attr:`metrics` and
    :meth:`dump_trace`; the install is reference-counted, so the
    per-rank sessions of one :meth:`run` share a single registry.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Session, SolverConfig, StreamConfig
    >>> data = np.random.default_rng(0).standard_normal((100, 30))
    >>> with Session(solver=SolverConfig(K=3, ff=1.0),
    ...              stream=StreamConfig(batch=10)) as session:
    ...     res = session.fit_stream(data).result()
    >>> res.modes.shape
    (100, 3)
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        *,
        comm: Any = None,
        solver: Optional[SolverConfig] = None,
        backend: Optional[BackendConfig] = None,
        stream: Optional[StreamConfig] = None,
        obs: Optional[ObservabilityConfig] = None,
    ) -> None:
        cfg = config if config is not None else RunConfig()
        if not isinstance(cfg, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(cfg).__name__}"
            )
        sections = {
            key: value
            for key, value in (
                ("solver", solver),
                ("backend", backend),
                ("stream", stream),
                ("obs", obs),
            )
            if value is not None
        }
        if sections:
            cfg = cfg.replace(**sections)
        self._config = cfg
        self._obs_installed = False
        if cfg.obs.enabled:
            # Installed before the communicator exists so the factory's
            # observer hook meters it; uninstalled (refcounted) on close.
            _obs.install(metrics=cfg.obs.metrics, trace=cfg.obs.trace)
            self._obs_installed = True
        self._owns_comm = comm is None
        try:
            if comm is None:
                bcfg = cfg.backend
                if bcfg.name == "threads" and bcfg.size > 1:
                    raise ConfigurationError(
                        f"a single Session cannot host {bcfg.size} 'threads' "
                        f"ranks (each rank needs its own); dispatch with "
                        f"Session.run(config, fn) instead"
                    )
                comm = create_communicator(
                    bcfg.name,
                    bcfg.size,
                    timeout=bcfg.timeout,
                    irecv_buffer_bytes=bcfg.irecv_buffer_bytes,
                )
            else:
                # Adopted communicators (the per-rank Session.run form, an
                # mpi4py world) predate this session's install — wrap them
                # now; a no-op when metrics are off, idempotent otherwise.
                comm = _obs.observe_communicator(comm)
        except BaseException:
            if self._obs_installed:
                self._obs_installed = False
                _obs.uninstall()
            raise
        self._comm = comm
        self._driver: Optional[ParSVDParallel] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drop_pending=exc_type is not None)

    def close(self, *, drop_pending: bool = False) -> None:
        """End the session: complete any in-flight overlapped step and
        release the driver (and, when owned, the communicator binding).

        Safe to call twice.  On a clean exit a pending pipelined step is
        finalised so no peer is left waiting; with ``drop_pending=True``
        (what ``__exit__`` passes while an exception is unwinding) the
        pending state is dropped instead — waiting on peers that are
        themselves unwinding could only block until the mailbox timeout
        and mask the original error.
        """
        if self._closed:
            return
        driver, self._driver = self._driver, None
        self._closed = True
        try:
            if driver is not None and driver.pending_update and not drop_pending:
                driver._finalize_pending()
        finally:
            if self._owns_comm:
                self._comm = None
            if self._obs_installed:
                self._obs_installed = False
                _obs.uninstall()

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("this Session is closed")

    # -- configuration / plumbing accessors --------------------------------
    @property
    def config(self) -> RunConfig:
        """The full typed run configuration this session executes."""
        return self._config

    @property
    def comm(self) -> Any:
        """This session's communicator (rank view)."""
        self._require_open()
        return self._comm

    @property
    def driver(self) -> ParSVDParallel:
        """The underlying :class:`~repro.core.parallel.ParSVDParallel`,
        built lazily from ``config.solver`` on first access."""
        self._require_open()
        if self._driver is None:
            self._driver = ParSVDParallel(
                self._comm, solver=self._config.solver
            )
        return self._driver

    def _require_fitted(self) -> ParSVDParallel:
        if self._driver is None or not self._driver.initialized:
            raise ConfigurationError(
                "this Session has not ingested any data yet; call "
                "fit_stream()/initialize() (or Session.resume) first"
            )
        return self._driver

    # -- streaming ---------------------------------------------------------
    def _resolve_stream(
        self, source: Any, partition: bool
    ) -> Iterable[np.ndarray]:
        scfg = self._config.stream
        if source is None:
            if scfg.source is None:
                raise ConfigurationError(
                    "fit_stream() needs a data source: pass one, or set "
                    "stream.source in the RunConfig"
                )
            source = scfg.source
        if isinstance(source, SnapshotStream):
            stream = source
        elif isinstance(source, (str, pathlib.Path)):
            from .data.io import SnapshotDataset

            if scfg.batch is None:
                raise ConfigurationError(
                    "streaming from an on-disk container requires "
                    "stream.batch in the RunConfig"
                )
            stream = dataset_stream(SnapshotDataset.open(source), scfg.batch)
        else:
            if scfg.batch is None:
                raise ConfigurationError(
                    "streaming an in-memory matrix requires stream.batch "
                    "in the RunConfig (or pass a SnapshotStream)"
                )
            stream = array_stream(np.asarray(source), scfg.batch)
        if partition and self._comm.size > 1:
            if stream.n_dof is None:
                raise ConfigurationError(
                    "cannot row-partition a stream of unknown n_dof "
                    "across ranks; declare it (e.g. function_stream("
                    "n_dof=...)) or pass partition=False with rank-local "
                    "batches"
                )
            part = block_partition(stream.n_dof, self._comm.size)
            stream = stream.restrict_rows(part.slice_of(self._comm.rank))
        if scfg.prefetch > 0:
            stream = PrefetchStream(stream, depth=scfg.prefetch)
        return stream

    def fit_stream(self, source: Any = None, *, partition: bool = True) -> "Session":
        """Stream a whole data source through the driver.

        Parameters
        ----------
        source:
            A 2-D array (sliced into ``stream.batch``-column batches), a
            path to a :class:`~repro.data.io.SnapshotDataset` container,
            a :class:`~repro.data.streams.SnapshotStream`, or ``None`` to
            open ``config.stream.source``.
        partition:
            ``True`` (default): the source is *global* and each rank
            ingests its canonical :func:`~repro.utils.partition.
            block_partition` row block — the APMOS domain decomposition,
            wired for you.  ``False``: the source is already rank-local.

        A fresh session initialises on the first batch; a resumed (or
        previously fitted) one keeps incorporating — so checkpoint /
        resume / ``fit_stream`` composes into one continuous stream.
        ``config.stream.prefetch`` wraps the rank-local stream in a
        background :class:`~repro.data.streams.PrefetchStream`;
        ``config.solver.overlap`` keeps each step's collectives in
        flight while the next batch arrives.
        """
        self._require_open()
        driver = self.driver
        got_any = driver.initialized
        for batch in self._resolve_stream(source, partition):
            if not got_any:
                driver.initialize(batch)
                got_any = True
            else:
                driver.incorporate_data(batch)
        if not got_any:
            raise ConfigurationError("fit_stream received an empty batch stream")
        return self

    def initialize(self, batch: np.ndarray) -> "Session":
        """Manual stepping: factor the first rank-local batch."""
        self.driver.initialize(batch)
        return self

    def incorporate_data(self, batch: np.ndarray) -> "Session":
        """Manual stepping: ingest one more rank-local batch."""
        self.driver.incorporate_data(batch)
        return self

    # -- results -----------------------------------------------------------
    def result(self) -> SessionResult:
        """Assemble and return the current factorization.

        Collective when modes are stale (all ranks must call in step —
        the same contract as reading
        :attr:`~repro.core.parallel.ParSVDParallel.modes`).
        """
        driver = self._require_fitted()
        modes = driver.assemble_modes()
        return SessionResult(
            modes=modes,
            singular_values=driver.singular_values,
            iteration=driver.iteration,
            n_seen=driver.n_seen,
        )

    @property
    def modes(self) -> np.ndarray:
        """Global modes per the gather policy (collective when stale)."""
        return self._require_fitted().modes

    @property
    def local_modes(self) -> np.ndarray:
        """This rank's mode block (never communicates)."""
        return self._require_fitted().local_modes

    @property
    def singular_values(self) -> np.ndarray:
        """Current singular values."""
        return self._require_fitted().singular_values

    # -- observability -----------------------------------------------------
    @property
    def metrics(self) -> dict:
        """Snapshot of the metrics registry this session reports into.

        ``{"counters": ..., "gauges": ..., "histograms": ...}`` keyed by
        metric name (``repro.<subsystem>.<name>``).  The registry is
        process-global and shared by the per-rank sessions of one
        :meth:`run`, so reading it after the run sees every rank's
        contributions merged; it remains readable after :meth:`close`.
        """
        return _obs.current_registry().snapshot()

    def dump_trace(self, path: PathLike) -> str:
        """Write the span timeline as Chrome-trace JSON to ``path``.

        The file loads in ``chrome://tracing`` / Perfetto: one process
        per rank, spans grouped by phase (``ingest``, ``qr``,
        ``tsqr_comm``, ``svd``, ``wait``, ``flush``).  Meaningful when
        the session runs with ``obs.trace`` enabled; an empty trace is
        still valid JSON.  Returns ``path`` as a string.
        """
        _obs.current_tracer().write_chrome_trace(path)
        return str(path)

    # -- persistence / serving ---------------------------------------------
    def save_checkpoint(self, path: PathLike, gathered: bool = False) -> str:
        """Checkpoint the streaming state with this session's
        :class:`RunConfig` embedded, so :meth:`resume` restores solver
        *and* backend settings.  ``gathered=True`` writes one rank-0 file
        restartable at any rank count (collective)."""
        return self._require_fitted().save_checkpoint(
            path, gathered=gathered, run_config=self._config
        )

    def export_to_store(self, store: Any, name: str) -> int:
        """Publish the current basis into a serving
        :class:`~repro.serving.ModeBaseStore` (collective); returns the
        assigned version on every rank."""
        return self._require_fitted().export_to_store(store, name)

    def query_engine(self, store: Any, **options: Any):
        """A serving :class:`~repro.serving.QueryEngine` over this
        session's communicator (``options`` pass through, e.g.
        ``flush_threshold=``, ``cache_size=``)."""
        self._require_open()
        from .serving.engine import QueryEngine

        return QueryEngine(self._comm, store, **options)

    # -- resume / SPMD dispatch --------------------------------------------
    @classmethod
    def resume(
        cls,
        path: PathLike,
        *,
        comm: Any = None,
        config: Optional[RunConfig] = None,
        backend: Optional[BackendConfig] = None,
    ) -> "Session":
        """Reopen a checkpointed run as a live session.

        The effective :class:`RunConfig` is, in precedence order: the
        explicit ``config`` argument, else the config embedded in the
        checkpoint, else (legacy checkpoints) one reconstructed from the
        recorded solver fields; ``backend`` then replaces its backend
        section (e.g. to resume a gathered checkpoint at a different
        rank count).  With ``comm`` given the session adopts that rank's
        communicator (the per-rank form :meth:`run` uses); otherwise the
        session creates the backend itself, under the same single-rank
        constraint as the constructor.

        Restores bit-identically: the continued stream matches an
        uninterrupted run to machine precision, including from
        checkpoints written by the legacy (pre-``RunConfig``) API.
        """
        cfg = config if config is not None else checkpoint_run_config(path)
        if backend is not None:
            cfg = cfg.replace(backend=backend)
        session = cls(cfg, comm=comm)
        session._driver = ParSVDParallel.from_checkpoint(
            session._comm, path, solver=cfg.solver
        )
        return session

    @classmethod
    def run(
        cls,
        config: Optional[RunConfig],
        fn: Callable[..., Any],
        *args: Any,
        resume: Optional[PathLike] = None,
        trace: bool = False,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``fn(session, *args, **kwargs)`` SPMD-style on the
        configured backend — the one entry point every CLI subcommand,
        example and benchmark drives.

        Each rank receives its own :class:`Session` (sharing ``config``),
        entered and exited around ``fn``.  With ``resume=`` each rank's
        session is :meth:`resume`-d from that checkpoint instead of
        starting fresh (``config=None`` then takes the checkpoint's
        embedded config).  Returns the rank-ordered list of per-rank
        results (``trace=True`` additionally returns the communication
        tracers, as :func:`repro.smpi.run_backend` does).
        """
        if config is None:
            if resume is None:
                raise ConfigurationError(
                    "Session.run needs a RunConfig (or a resume checkpoint "
                    "to take one from)"
                )
            config = checkpoint_run_config(resume)
        elif not isinstance(config, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(config).__name__}"
            )
        bcfg = config.backend

        def job(comm):
            if resume is not None:
                session = cls.resume(resume, comm=comm, config=config)
            else:
                session = cls(config, comm=comm)
            with session:
                return fn(session, *args, **kwargs)

        return run_backend(
            bcfg.name,
            bcfg.size,
            job,
            timeout=bcfg.timeout,
            trace=trace,
            irecv_buffer_bytes=bcfg.irecv_buffer_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "fitted" if self._driver is not None and self._driver.initialized
            else "fresh"
        )
        bcfg = self._config.backend
        return (
            f"Session(backend={bcfg.name!r}, size={bcfg.size}, "
            f"K={self._config.solver.K}, {state})"
        )
