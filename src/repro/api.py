"""``repro.api`` — the one public entry point for every SVD driver.

Four layers of this reproduction accreted their own construction idioms
(communicator factories, driver kwargs, prefetch wiring, checkpoint and
serving plumbing).  This module is the stable, typed boundary over all of
them:

* :class:`~repro.config.RunConfig` — one frozen, validated value
  describing a whole run: the algorithm (:class:`~repro.config.
  SolverConfig`), the communicator substrate (:class:`~repro.config.
  BackendConfig`) and the batch source (:class:`~repro.config.
  StreamConfig`).  Round-trips through JSON, embeds into checkpoints.
* :class:`Session` — a context manager that owns the communicator
  lifecycle, builds the driver, wires prefetch/partitioning/overlap, and
  exposes the whole workflow: :meth:`~Session.fit_stream`,
  :meth:`~Session.result`, :meth:`~Session.save_checkpoint`,
  :meth:`~Session.export_to_store`, :meth:`~Session.query_engine`, and
  :meth:`~Session.resume`.

Quickstart — stream a matrix on 4 in-process ranks::

    from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig

    cfg = RunConfig(
        solver=SolverConfig(K=10, ff=0.95),
        backend=BackendConfig(name="threads", size=4),
        stream=StreamConfig(batch=100),
    )

    def job(session):
        session.fit_stream(data)           # rows partitioned per rank
        return session.result()

    results = Session.run(cfg, job)        # rank-ordered SessionResults
    modes = results[0].modes

Single-rank sessions (``backend="self"``, or any backend of size 1) can
be used directly as context managers::

    with Session(cfg) as session:
        session.fit_stream(data)
        res = session.result()

and under a real MPI launcher each process adopts its own communicator::

    with Session(cfg, comm=create_communicator("mpi4py")) as session:
        ...
"""

from __future__ import annotations

import dataclasses
import pathlib
import random
import tempfile
import time
from typing import Any, Callable, Iterable, List, Optional, Tuple, Union

import numpy as np

from .config import (
    BackendConfig,
    FaultConfig,
    FaultSpec,
    HealthConfig,
    ObservabilityConfig,
    RestartPolicy,
    RunConfig,
    ServingConfig,
    SolverConfig,
    StreamConfig,
    TenantSpec,
)
from .core.checkpoint import (
    normalize_checkpoint_path,
    rank_checkpoint_path,
    read_checkpoint,
)
from .core.parallel import ParSVDParallel
from .data.streams import PrefetchStream, SnapshotStream, array_stream, dataset_stream
from .exceptions import CommunicatorError, ConfigurationError, DataFormatError
from .faults import runtime as _faults
from .faults.comm import FaultyCommunicator
from .faults.controller import FaultController
from .obs import runtime as _obs
from .smpi.executor import ParallelFailure
from .smpi.factory import create_communicator, run_backend
from .utils.partition import block_partition

__all__ = [
    "BackendConfig",
    "FaultConfig",
    "FaultSpec",
    "HealthConfig",
    "ObservabilityConfig",
    "RestartPolicy",
    "RunConfig",
    "ServingConfig",
    "Session",
    "SessionResult",
    "SolverConfig",
    "StreamConfig",
    "TenantSpec",
    "checkpoint_run_config",
    "load_run_config",
]

PathLike = Union[str, pathlib.Path]


def load_run_config(path: PathLike) -> RunConfig:
    """Load and validate a :class:`RunConfig` JSON file.

    Raises :class:`~repro.exceptions.ConfigurationError` naming the
    offending section/key on any mismatch — what ``repro config
    validate`` surfaces.
    """
    return RunConfig.load(path)


def checkpoint_run_config(path: PathLike) -> RunConfig:
    """The :class:`RunConfig` a checkpoint resumes under.

    Prefers the typed config embedded by the :class:`Session` layer
    (``run_config`` payload, any kind); for a checkpoint written through
    the legacy driver API it is reconstructed from the recorded solver
    fields, with the default backend at the checkpoint's rank count.
    Accepts the same ``path`` spellings as
    :meth:`~repro.core.parallel.ParSVDParallel.from_checkpoint`
    (a gathered single file or the per-rank shard family's base path).
    """
    candidates = [normalize_checkpoint_path(path), rank_checkpoint_path(path, 0)]
    state = None
    errors = []
    for candidate in candidates:
        if not candidate.exists():
            continue
        try:
            state = read_checkpoint(candidate, load_arrays=False)
            break
        except DataFormatError as exc:
            errors.append(str(exc))
    if state is None:
        detail = f" ({'; '.join(errors)})" if errors else ""
        raise DataFormatError(
            f"{path}: no readable checkpoint at "
            f"{' or '.join(str(c) for c in candidates)}{detail}"
        )
    if state["run_config"] is not None:
        return state["run_config"]
    # Legacy checkpoint: the same flat-field reconstruction the driver's
    # own restart path uses (one shared helper, no drift between them).
    solver = ParSVDParallel._restored_solver(state, None, None, None)
    nranks = max(int(state["nranks"]), 1)
    return RunConfig(solver=solver, backend=BackendConfig(size=nranks))


@dataclasses.dataclass(frozen=True)
class SessionResult:
    """What a finished (or checkpointed) session computed.

    ``modes`` follows the solver's gather policy: the global mode matrix
    under ``"bcast"`` (all ranks) and ``"root"`` (rank 0; ``None``
    elsewhere), this rank's local block under ``"none"``.  Arrays may be
    read-only zero-copy snapshots shared between ranks — copy before
    mutating.
    """

    modes: Optional[np.ndarray]
    singular_values: np.ndarray
    iteration: int
    n_seen: int


class Session:
    """Owns one run end to end: communicator, driver, streams, lifecycle.

    Parameters
    ----------
    config:
        The :class:`~repro.config.RunConfig` to run (default: all
        defaults).
    comm:
        Adopt an existing communicator (one rank of an SPMD job, or a
        wrapped ``mpi4py`` world) instead of creating one.  Without it
        the session creates — and owns — the communicator described by
        ``config.backend``; the multi-rank ``"threads"`` backend needs
        one session *per rank*, so create those through :meth:`run`.
    solver, backend, stream, obs:
        Section shortcuts: ``Session(solver=SolverConfig(K=8))`` is
        ``Session(RunConfig(solver=SolverConfig(K=8)))``; when both a
        ``config`` and a section are given, the section replaces the
        config's.

    With ``config.obs`` enabled the session installs process-global
    observability (:mod:`repro.obs`) for its lifetime: every
    communicator op is metered, the pipelined engine reports its
    ``overlap_efficiency`` gauge, and (with ``obs.trace``) phase spans
    accumulate on the tracer.  Read them through :attr:`metrics` and
    :meth:`dump_trace`; the install is reference-counted, so the
    per-rank sessions of one :meth:`run` share a single registry.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.api import Session, SolverConfig, StreamConfig
    >>> data = np.random.default_rng(0).standard_normal((100, 30))
    >>> with Session(solver=SolverConfig(K=3, ff=1.0),
    ...              stream=StreamConfig(batch=10)) as session:
    ...     res = session.fit_stream(data).result()
    >>> res.modes.shape
    (100, 3)
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        *,
        comm: Any = None,
        solver: Optional[SolverConfig] = None,
        backend: Optional[BackendConfig] = None,
        stream: Optional[StreamConfig] = None,
        obs: Optional[ObservabilityConfig] = None,
    ) -> None:
        cfg = config if config is not None else RunConfig()
        if not isinstance(cfg, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(cfg).__name__}"
            )
        sections = {
            key: value
            for key, value in (
                ("solver", solver),
                ("backend", backend),
                ("stream", stream),
                ("obs", obs),
            )
            if value is not None
        }
        if sections:
            cfg = cfg.replace(**sections)
        self._config = cfg
        self._obs_installed = False
        if cfg.obs.enabled:
            # Installed before the communicator exists so the factory's
            # observer hook meters it; uninstalled (refcounted) on close.
            _obs.install(metrics=cfg.obs.metrics, trace=cfg.obs.trace)
            self._obs_installed = True
        self._faults_installed = False
        if cfg.faults.active:
            # Same refcounted pattern as obs: the first install builds the
            # controller, per-rank siblings share it.  Session.run's retry
            # loop pins a controller *before* the sessions exist, so their
            # installs here just add references to it.
            _faults.install(cfg.faults)
            self._faults_installed = True
        self._owns_comm = comm is None
        self._health_daemon = None
        try:
            if comm is None:
                bcfg = cfg.backend
                if bcfg.name == "threads" and bcfg.size > 1:
                    raise ConfigurationError(
                        f"a single Session cannot host {bcfg.size} 'threads' "
                        f"ranks (each rank needs its own); dispatch with "
                        f"Session.run(config, fn) instead"
                    )
                comm = create_communicator(
                    bcfg.name,
                    bcfg.size,
                    timeout=bcfg.timeout,
                    irecv_buffer_bytes=bcfg.irecv_buffer_bytes,
                )
            elif not isinstance(comm, FaultyCommunicator):
                # Adopted communicators (the per-rank Session.run form, an
                # mpi4py world) may predate this session's installs — wrap
                # them now, observer inside, injector outside (the factory
                # layering).  No-ops when the runtimes are off; a comm the
                # factory already wrapped is adopted as-is.
                comm = _faults.inject_communicator(
                    _obs.observe_communicator(comm)
                )
            if cfg.health.enabled:
                self._start_health_daemon(comm)
        except BaseException:
            if self._health_daemon is not None:
                self._health_daemon.stop(retire=False)
                self._health_daemon = None
            if self._obs_installed:
                self._obs_installed = False
                _obs.uninstall()
            if self._faults_installed:
                self._faults_installed = False
                _faults.uninstall()
            raise
        self._comm = comm
        self._driver: Optional[ParSVDParallel] = None
        self._closed = False
        # Live PrefetchStreams handed to fit_stream — aborted on
        # close(drop_pending=True) so no producer thread outlives a
        # crashed session.
        self._prefetch_streams: List[PrefetchStream] = []
        # (path, every) set by Session.run's restart loop: fit_stream then
        # writes a gathered checkpoint every `every` ingested batches.
        self._auto_checkpoint: Optional[Tuple[pathlib.Path, int]] = None

    def _start_health_daemon(self, comm: Any) -> None:
        """Start this rank's heartbeat/progress daemon (``health.enabled``).

        The daemon beats this rank's world mailbox, opportunistically
        completes the driver's in-flight overlapped step, and (one per
        world) runs the :class:`~repro.health.monitor.HealthMonitor` that
        escalates silent peers to ``World.fail_rank``.  Imported lazily —
        :mod:`repro.health` sits above this module.
        """
        from .health.daemon import ProgressDaemon, communicator_world
        from .health.monitor import HealthMonitor

        world, world_rank = communicator_world(comm)
        monitor = None
        if world is not None:
            # One monitor per world: the first rank's session builds it,
            # siblings reuse it (fail_rank is idempotent either way).
            monitor = world.health
            if monitor is None:
                monitor = HealthMonitor(world, self._config.health)

        def advance() -> bool:
            driver = self._driver
            if driver is None:
                return False
            return driver.try_finalize_pending()

        self._health_daemon = ProgressDaemon(
            self._config.health.heartbeat_interval,
            world=world,
            world_rank=world_rank,
            advance=advance,
            monitor=monitor,
        ).start()

    # -- lifecycle ---------------------------------------------------------
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(drop_pending=exc_type is not None)

    def close(self, *, drop_pending: bool = False) -> None:
        """End the session: complete any in-flight overlapped step and
        release the driver (and, when owned, the communicator binding).

        Safe to call twice.  On a clean exit a pending pipelined step is
        finalised so no peer is left waiting; with ``drop_pending=True``
        (what ``__exit__`` passes while an exception is unwinding) the
        pending state is *aborted* instead — its in-flight requests are
        cancelled (waiting on peers that are themselves unwinding could
        only block until the mailbox timeout and mask the original
        error) and any background :class:`~repro.data.streams.
        PrefetchStream` producers this session started are stopped and
        joined, so a crashed session leaks neither requests nor threads.
        """
        if self._closed:
            return
        daemon, self._health_daemon = self._health_daemon, None
        if daemon is not None:
            # Stopped before the final drain (no daemon racing it) and
            # retired, so peer monitors treat the silence as a clean
            # departure rather than a death.
            daemon.stop(retire=True)
        driver, self._driver = self._driver, None
        streams, self._prefetch_streams = self._prefetch_streams, []
        self._closed = True
        try:
            if driver is not None and driver.pending_update:
                if drop_pending:
                    driver.abort_pending()
                else:
                    driver._finalize_pending()
        finally:
            if drop_pending:
                for stream in streams:
                    stream.abort()
            if self._owns_comm:
                self._comm = None
            if self._obs_installed:
                self._obs_installed = False
                _obs.uninstall()
            if self._faults_installed:
                self._faults_installed = False
                _faults.uninstall()

    def _require_open(self) -> None:
        if self._closed:
            raise ConfigurationError("this Session is closed")

    # -- configuration / plumbing accessors --------------------------------
    @property
    def config(self) -> RunConfig:
        """The full typed run configuration this session executes."""
        return self._config

    @property
    def comm(self) -> Any:
        """This session's communicator (rank view)."""
        self._require_open()
        return self._comm

    @property
    def driver(self) -> ParSVDParallel:
        """The underlying :class:`~repro.core.parallel.ParSVDParallel`,
        built lazily from ``config.solver`` on first access."""
        self._require_open()
        if self._driver is None:
            self._driver = ParSVDParallel(
                self._comm, solver=self._config.solver
            )
        return self._driver

    def _require_fitted(self) -> ParSVDParallel:
        if self._driver is None or not self._driver.initialized:
            raise ConfigurationError(
                "this Session has not ingested any data yet; call "
                "fit_stream()/initialize() (or Session.resume) first"
            )
        return self._driver

    # -- streaming ---------------------------------------------------------
    def _resolve_stream(
        self, source: Any, partition: bool
    ) -> Iterable[np.ndarray]:
        scfg = self._config.stream
        if source is None:
            if scfg.source is None:
                raise ConfigurationError(
                    "fit_stream() needs a data source: pass one, or set "
                    "stream.source in the RunConfig"
                )
            source = scfg.source
        if isinstance(source, SnapshotStream):
            stream = source
        elif isinstance(source, (str, pathlib.Path)):
            from .data.io import SnapshotDataset

            if scfg.batch is None:
                raise ConfigurationError(
                    "streaming from an on-disk container requires "
                    "stream.batch in the RunConfig"
                )
            stream = dataset_stream(SnapshotDataset.open(source), scfg.batch)
        else:
            if scfg.batch is None:
                raise ConfigurationError(
                    "streaming an in-memory matrix requires stream.batch "
                    "in the RunConfig (or pass a SnapshotStream)"
                )
            stream = array_stream(np.asarray(source), scfg.batch)
        if partition and self._comm.size > 1:
            if stream.n_dof is None:
                raise ConfigurationError(
                    "cannot row-partition a stream of unknown n_dof "
                    "across ranks; declare it (e.g. function_stream("
                    "n_dof=...)) or pass partition=False with rank-local "
                    "batches"
                )
            part = block_partition(stream.n_dof, self._comm.size)
            stream = stream.restrict_rows(part.slice_of(self._comm.rank))
        if scfg.prefetch > 0:
            stream = PrefetchStream(stream, depth=scfg.prefetch)
            # Tracked so close(drop_pending=True) can stop the producer
            # thread of an iteration abandoned mid-stream by a crash.
            self._prefetch_streams.append(stream)
        return stream

    def fit_stream(
        self,
        source: Any = None,
        *,
        partition: bool = True,
        replay: Optional[bool] = None,
    ) -> "Session":
        """Stream a whole data source through the driver.

        Parameters
        ----------
        source:
            A 2-D array (sliced into ``stream.batch``-column batches), a
            path to a :class:`~repro.data.io.SnapshotDataset` container,
            a :class:`~repro.data.streams.SnapshotStream`, or ``None`` to
            open ``config.stream.source``.
        partition:
            ``True`` (default): the source is *global* and each rank
            ingests its canonical :func:`~repro.utils.partition.
            block_partition` row block — the APMOS domain decomposition,
            wired for you.  ``False``: the source is already rank-local.

        A fresh session initialises on the first batch; a resumed (or
        previously fitted) one keeps incorporating — so checkpoint /
        resume / ``fit_stream`` composes into one continuous stream.
        ``replay`` declares what the source covers relative to the
        restored state: ``False`` (the plain-resume contract), the
        stream holds only *new* columns and every batch is ingested;
        ``True``, the stream is the FULL run replayed from the start
        and batches the restored state already covers are skipped, not
        re-ingested — checkpoints land on batch boundaries, so whole
        batches skip exactly and the replayed run stays bit-identical
        to an uninterrupted one.  The default (``None``) is ``False``
        except under ``Session.run(restart_policy=...)``, whose job
        functions stream the whole run every attempt and recover from
        the auto-checkpoint.  ``config.stream.prefetch`` wraps the
        rank-local stream in a background :class:`~repro.data.streams.
        PrefetchStream`; ``config.solver.overlap`` keeps each step's
        collectives in flight while the next batch arrives.
        """
        self._require_open()
        driver = self.driver
        got_any = driver.initialized
        if replay is None:
            replay = self._auto_checkpoint is not None
        already_seen = driver.n_seen if (got_any and replay) else 0
        seen = 0
        ingested = 0
        stream = self._resolve_stream(source, partition)
        try:
            for batch in stream:
                width = batch.shape[1]
                if already_seen and seen + width <= already_seen:
                    # Restart replay: this batch is inside the restored
                    # state already.
                    seen += width
                    st = _obs.state()
                    if st is not None and st.registry is not None:
                        st.registry.counter(
                            "repro.recovery.replayed_batches"
                        ).inc()
                    continue
                seen += width
                if not got_any:
                    driver.initialize(batch)
                    got_any = True
                else:
                    driver.incorporate_data(batch)
                ingested += 1
                if self._auto_checkpoint is not None:
                    path, every = self._auto_checkpoint
                    if every > 0 and ingested % every == 0:
                        # Collective, but in lockstep: every rank ingests
                        # the same batch schedule, so the counters agree.
                        self.save_checkpoint(path, gathered=True)
        except BaseException:
            # Stop the background producer promptly (close(drop_pending)
            # aborts too — this covers bare fit_stream callers).
            if isinstance(stream, PrefetchStream):
                stream.abort()
            raise
        if not got_any:
            raise ConfigurationError("fit_stream received an empty batch stream")
        return self

    def initialize(self, batch: np.ndarray) -> "Session":
        """Manual stepping: factor the first rank-local batch."""
        self.driver.initialize(batch)
        return self

    def incorporate_data(self, batch: np.ndarray) -> "Session":
        """Manual stepping: ingest one more rank-local batch."""
        self.driver.incorporate_data(batch)
        return self

    # -- results -----------------------------------------------------------
    def result(self) -> SessionResult:
        """Assemble and return the current factorization.

        Collective when modes are stale (all ranks must call in step —
        the same contract as reading
        :attr:`~repro.core.parallel.ParSVDParallel.modes`).
        """
        driver = self._require_fitted()
        modes = driver.assemble_modes()
        return SessionResult(
            modes=modes,
            singular_values=driver.singular_values,
            iteration=driver.iteration,
            n_seen=driver.n_seen,
        )

    @property
    def modes(self) -> np.ndarray:
        """Global modes per the gather policy (collective when stale)."""
        return self._require_fitted().modes

    @property
    def local_modes(self) -> np.ndarray:
        """This rank's mode block (never communicates)."""
        return self._require_fitted().local_modes

    @property
    def singular_values(self) -> np.ndarray:
        """Current singular values."""
        return self._require_fitted().singular_values

    def rescale(self, new_size: int) -> "Session":
        """Live mid-stream rescale — elastic sessions only.

        A plain session is one rank of a fixed-size world and cannot
        resize it; run under ``Session.run(...,
        restart_policy=RestartPolicy(mode="live"))`` (or construct a
        :class:`~repro.health.ElasticSession` directly) to rescale.
        """
        from .exceptions import RescaleError

        raise RescaleError(
            f"this Session is one rank of a fixed-size world and cannot "
            f"rescale to {new_size}; use RestartPolicy(mode='live') with "
            f"Session.run, or repro.health.ElasticSession"
        )

    # -- observability -----------------------------------------------------
    @property
    def metrics(self) -> dict:
        """Snapshot of the metrics registry this session reports into.

        ``{"counters": ..., "gauges": ..., "histograms": ...}`` keyed by
        metric name (``repro.<subsystem>.<name>``).  The registry is
        process-global and shared by the per-rank sessions of one
        :meth:`run`, so reading it after the run sees every rank's
        contributions merged; it remains readable after :meth:`close`.
        """
        return _obs.current_registry().snapshot()

    def dump_trace(self, path: PathLike) -> str:
        """Write the span timeline as Chrome-trace JSON to ``path``.

        The file loads in ``chrome://tracing`` / Perfetto: one process
        per rank, spans grouped by phase (``ingest``, ``qr``,
        ``tsqr_comm``, ``svd``, ``wait``, ``flush``).  Meaningful when
        the session runs with ``obs.trace`` enabled; an empty trace is
        still valid JSON.  Returns ``path`` as a string.
        """
        _obs.current_tracer().write_chrome_trace(path)
        return str(path)

    # -- persistence / serving ---------------------------------------------
    def save_checkpoint(self, path: PathLike, gathered: bool = False) -> str:
        """Checkpoint the streaming state with this session's
        :class:`RunConfig` embedded, so :meth:`resume` restores solver
        *and* backend settings.  ``gathered=True`` writes one rank-0 file
        restartable at any rank count (collective)."""
        return self._require_fitted().save_checkpoint(
            path, gathered=gathered, run_config=self._config
        )

    def export_to_store(self, store: Any, name: str) -> int:
        """Publish the current basis into a serving
        :class:`~repro.serving.ModeBaseStore` (collective); returns the
        assigned version on every rank."""
        return self._require_fitted().export_to_store(store, name)

    def query_engine(self, store: Any, **options: Any):
        """A serving :class:`~repro.serving.QueryEngine` over this
        session's communicator (``options`` pass through, e.g.
        ``flush_threshold=``, ``cache_size=``)."""
        self._require_open()
        from .serving.engine import QueryEngine

        return QueryEngine(self._comm, store, **options)

    # -- resume / SPMD dispatch --------------------------------------------
    @classmethod
    def resume(
        cls,
        path: PathLike,
        *,
        comm: Any = None,
        config: Optional[RunConfig] = None,
        backend: Optional[BackendConfig] = None,
    ) -> "Session":
        """Reopen a checkpointed run as a live session.

        The effective :class:`RunConfig` is, in precedence order: the
        explicit ``config`` argument, else the config embedded in the
        checkpoint, else (legacy checkpoints) one reconstructed from the
        recorded solver fields; ``backend`` then replaces its backend
        section (e.g. to resume a gathered checkpoint at a different
        rank count).  With ``comm`` given the session adopts that rank's
        communicator (the per-rank form :meth:`run` uses); otherwise the
        session creates the backend itself, under the same single-rank
        constraint as the constructor.

        Restores bit-identically: the continued stream matches an
        uninterrupted run to machine precision, including from
        checkpoints written by the legacy (pre-``RunConfig``) API.
        """
        cfg = config if config is not None else checkpoint_run_config(path)
        if backend is not None:
            cfg = cfg.replace(backend=backend)
        session = cls(cfg, comm=comm)
        session._driver = ParSVDParallel.from_checkpoint(
            session._comm, path, solver=cfg.solver
        )
        return session

    @classmethod
    def run(
        cls,
        config: Optional[RunConfig],
        fn: Callable[..., Any],
        *args: Any,
        resume: Optional[PathLike] = None,
        trace: bool = False,
        restart_policy: Optional[RestartPolicy] = None,
        **kwargs: Any,
    ) -> List[Any]:
        """Run ``fn(session, *args, **kwargs)`` SPMD-style on the
        configured backend — the one entry point every CLI subcommand,
        example and benchmark drives.

        Each rank receives its own :class:`Session` (sharing ``config``),
        entered and exited around ``fn``.  With ``resume=`` each rank's
        session is :meth:`resume`-d from that checkpoint instead of
        starting fresh (``config=None`` then takes the checkpoint's
        embedded config).  Returns the rank-ordered list of per-rank
        results (``trace=True`` additionally returns the communication
        tracers, as :func:`repro.smpi.run_backend` does).

        With ``restart_policy=`` the run becomes *elastic*: every rank's
        ``fit_stream`` auto-checkpoints (gathered) every
        ``checkpoint_every`` ingested batches, and when the attempt dies
        — a rank crash (:class:`~repro.smpi.executor.ParallelFailure`) or
        a communicator fault — the whole SPMD step is torn down
        (pipelined requests aborted, prefetch producers stopped), the
        backend is rebuilt and the run replayed from the last
        checkpoint, after an exponential backoff.  ``shrink=True``
        additionally drops one rank per restart (never below
        ``min_size``) — gathered checkpoints restart at any rank count.
        Replay is exact: resume is bit-identical and already-seen
        batches are skipped whole, so a recovered run matches an
        uninterrupted one to machine precision.  When
        ``config.faults.active`` the fault controller is pinned *across*
        attempts, so a fire-once injected crash stays fired and the
        replay runs clean.
        """
        if config is None:
            if resume is None:
                raise ConfigurationError(
                    "Session.run needs a RunConfig (or a resume checkpoint "
                    "to take one from)"
                )
            config = checkpoint_run_config(resume)
        elif not isinstance(config, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(config).__name__}"
            )
        if restart_policy is None:
            return cls._dispatch(
                config, fn, args, kwargs, resume=resume, trace=trace
            )
        if not isinstance(restart_policy, RestartPolicy):
            raise ConfigurationError(
                f"restart_policy must be a RestartPolicy, "
                f"got {type(restart_policy).__name__}"
            )
        if restart_policy.mode == "live":
            return cls._run_live(
                config,
                fn,
                args,
                kwargs,
                resume=resume,
                policy=restart_policy,
            )
        return cls._run_with_restarts(
            config,
            fn,
            args,
            kwargs,
            resume=resume,
            trace=trace,
            policy=restart_policy,
        )

    @classmethod
    def _dispatch(
        cls,
        config: RunConfig,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        *,
        resume: Optional[PathLike],
        trace: bool,
        auto_checkpoint: Optional[Tuple[pathlib.Path, int]] = None,
    ) -> List[Any]:
        """One SPMD attempt: build per-rank sessions and run ``fn``."""
        bcfg = config.backend

        def job(comm):
            if resume is not None:
                session = cls.resume(resume, comm=comm, config=config)
            else:
                session = cls(config, comm=comm)
            session._auto_checkpoint = auto_checkpoint
            with session:
                return fn(session, *args, **kwargs)

        return run_backend(
            bcfg.name,
            bcfg.size,
            job,
            timeout=bcfg.timeout,
            trace=trace,
            irecv_buffer_bytes=bcfg.irecv_buffer_bytes,
        )

    @classmethod
    def _run_live(
        cls,
        config: RunConfig,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        *,
        resume: Optional[PathLike],
        policy: RestartPolicy,
    ) -> List[Any]:
        """``RestartPolicy(mode="live")``: one elastic in-process session
        instead of restart-and-replay.

        ``fn`` runs once against a :class:`~repro.health.ElasticSession`
        owning every rank; a detected dead rank triggers an in-place
        shrink (snapshot restore + communicator rebuild one rank smaller,
        metered as ``repro.recovery.live_rescales``) and the stream
        continues without replay.  Returns the single result replicated
        to the final rank count, mirroring the per-rank shape of the
        restart path.
        """
        from .health.elastic import ElasticSession

        if resume is not None:
            session = ElasticSession.resume(
                resume, config=config, policy=policy
            )
        else:
            session = ElasticSession(config, policy=policy)
        with session:
            result = fn(session, *args, **kwargs)
            size = session.size
        return [result] * size

    @classmethod
    def _run_with_restarts(
        cls,
        config: RunConfig,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        *,
        resume: Optional[PathLike],
        trace: bool,
        policy: RestartPolicy,
    ) -> List[Any]:
        """The elastic retry loop behind ``Session.run(restart_policy=)``."""
        pinned = False
        if config.faults.active:
            # Pin ONE controller for every attempt: fire-once crash specs
            # stay fired, so the replay after a restart runs clean instead
            # of crashing at the same step forever.
            _faults.install(controller=FaultController(config.faults))
            pinned = True
        obs_held = False
        if config.obs.enabled:
            # Hold one obs reference across attempts: the per-rank
            # sessions' refcount drops to zero between attempts, and the
            # restart counter below must land in the same registry the
            # attempts report into.
            _obs.install(metrics=config.obs.metrics, trace=config.obs.trace)
            obs_held = True
        tmpdir: Optional[tempfile.TemporaryDirectory] = None
        try:
            if policy.checkpoint_path is not None:
                ckpt_dir = pathlib.Path(policy.checkpoint_path)
                ckpt_dir.mkdir(parents=True, exist_ok=True)
            else:
                tmpdir = tempfile.TemporaryDirectory(prefix="repro-recovery-")
                ckpt_dir = pathlib.Path(tmpdir.name)
            ckpt_path = ckpt_dir / "recovery"
            rng = random.Random((config.faults.seed + 1) * 7919)
            size = config.backend.size
            restarts = 0
            while True:
                attempt_resume: Optional[PathLike] = resume
                if normalize_checkpoint_path(ckpt_path).exists():
                    try:
                        # Unreadable (e.g. half-written) recovery state
                        # falls back to the original starting point.
                        checkpoint_run_config(ckpt_path)
                        attempt_resume = ckpt_path
                    except DataFormatError:
                        pass
                run_cfg = config
                if size != config.backend.size:
                    run_cfg = config.replace(
                        backend=config.backend.replace(size=size)
                    )
                try:
                    return cls._dispatch(
                        run_cfg,
                        fn,
                        args,
                        kwargs,
                        resume=attempt_resume,
                        trace=trace,
                        auto_checkpoint=(ckpt_path, policy.checkpoint_every),
                    )
                except (ParallelFailure, CommunicatorError):
                    restarts += 1
                    if restarts > policy.max_restarts:
                        raise
                    st = _obs.state()
                    if st is not None and st.registry is not None:
                        st.registry.counter("repro.recovery.restarts").inc()
                    if policy.shrink and size > policy.min_size:
                        size -= 1
                    time.sleep(policy.backoff_for(restarts, rng))
        finally:
            if obs_held:
                _obs.uninstall()
            if pinned:
                _faults.uninstall()
            if tmpdir is not None:
                tmpdir.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "fitted" if self._driver is not None and self._driver.initialized
            else "fresh"
        )
        bcfg = self._config.backend
        return (
            f"Session(backend={bcfg.name!r}, size={bcfg.size}, "
            f"K={self._config.solver.K}, {state})"
        )
