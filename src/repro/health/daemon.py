"""Per-session background progress daemon.

One daemon thread per :class:`~repro.api.Session` (when
``HealthConfig.enabled``), doing three things each tick:

1. **Heartbeat** — publish this rank's liveness beat on its world
   mailbox, so peers' monitors see it alive even while its main thread
   is deep in a BLAS call.
2. **Progress** — opportunistically complete the driver's in-flight
   overlapped pipelined step (:meth:`~repro.core.parallel.ParSVDParallel.
   try_finalize_pending`, itself ``test()``-polling the step's preposted
   requests), so ``overlap=True`` steps finish without an explicit
   access.
3. **Monitoring** — run the :class:`~repro.health.monitor.HealthMonitor`
   check, escalating peers whose beats went stale.

Polling backs off exponentially while idle (up to 8x the heartbeat
interval) and snaps back to the base interval whenever a step completes.
All ``repro.health.*`` metrics flow through :mod:`repro.obs` and cost
nothing while observability is off.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Tuple

from ..obs import runtime as _obs
from .monitor import HealthMonitor

__all__ = ["ProgressDaemon", "communicator_world"]


def communicator_world(comm: Any) -> Tuple[Optional[Any], Optional[int]]:
    """Resolve ``(world, world_rank)`` behind a possibly-wrapped
    communicator.

    Unwraps the fault-injection / observability proxy chain via their
    ``inner`` attributes.  Backends without a shared world (``SelfComm``,
    the mpi4py adapter) yield ``(None, None)`` — heartbeat monitoring
    degrades to a no-op there.
    """
    seen = set()
    while True:
        inner = getattr(comm, "inner", None)
        if inner is None or inner is comm or id(comm) in seen:
            break
        seen.add(id(comm))
        comm = inner
    world = getattr(comm, "world", None)
    if world is None:
        return None, None
    try:
        world_rank = comm.world_rank
    except AttributeError:  # pragma: no cover - foreign communicator
        return None, None
    return world, int(world_rank)


class ProgressDaemon:
    """Background heartbeat + progress thread for one session rank.

    Parameters
    ----------
    interval:
        Base tick period (``HealthConfig.heartbeat_interval``).
    world, world_rank:
        The shared world and this rank's world rank (from
        :func:`communicator_world`); ``None`` disables heartbeating.
    advance:
        Zero-argument callable advancing the owner's in-flight work
        (returns ``True`` when it completed something); typically a
        closure over the driver's ``try_finalize_pending``.
    monitor:
        Optional :class:`HealthMonitor` to run each tick.
    """

    #: Idle backoff ceiling, as a multiple of the base interval.
    MAX_BACKOFF = 8.0

    def __init__(
        self,
        interval: float,
        *,
        world: Optional[Any] = None,
        world_rank: Optional[int] = None,
        advance: Optional[Callable[[], bool]] = None,
        monitor: Optional[HealthMonitor] = None,
        name: Optional[str] = None,
    ) -> None:
        self._interval = max(float(interval), 1e-4)
        self._world = world
        self._world_rank = world_rank
        self._advance = advance
        self._monitor = monitor
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        rank_tag = "?" if world_rank is None else str(world_rank)
        self._thread = threading.Thread(
            target=self._run,
            name=name or f"repro-health-{rank_tag}",
            daemon=True,
        )
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ProgressDaemon":
        if not self._started:
            self._started = True
            self._beat()
            self._thread.start()
        return self

    def stop(self, *, retire: bool = True) -> None:
        """Stop the daemon and (by default) retire this rank.

        Retiring tells peer monitors the silence that follows is a clean
        departure, not a death — a rank that finishes its job early must
        not be escalated to ``fail_rank`` while its siblings drain.
        """
        if not self._started:
            return
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        if retire and self._world is not None and self._world_rank is not None:
            self._world.retire_rank(self._world_rank)

    @property
    def running(self) -> bool:
        return self._started and self._thread.is_alive()

    @property
    def error(self) -> Optional[BaseException]:
        """The exception that stopped background progress, if any (the
        driver is poisoned too, so the owner's next access re-raises)."""
        return self._error

    # -- the tick loop -----------------------------------------------------
    def _beat(self) -> None:
        if self._world is not None and self._world_rank is not None:
            self._world.heartbeat(self._world_rank)
            st = _obs.state()
            if st is not None and st.registry is not None:
                st.registry.counter("repro.health.beats").inc()

    def _run(self) -> None:
        delay = self._interval
        while not self._stop.wait(delay):
            self._beat()
            advanced = False
            if self._advance is not None and self._error is None:
                try:
                    advanced = bool(self._advance())
                except BaseException as exc:
                    # The driver poisons itself on a failed completion;
                    # record the cause, stop advancing, keep beating (this
                    # rank is alive — its *step* failed).
                    self._error = exc
            if advanced:
                st = _obs.state()
                if st is not None and st.registry is not None:
                    st.registry.counter(
                        "repro.health.steps_advanced"
                    ).inc()
            if self._monitor is not None:
                try:
                    self._monitor.check()
                except Exception:  # pragma: no cover - defensive
                    pass
            if advanced:
                delay = self._interval
            else:
                delay = min(delay * 2.0, self._interval * self.MAX_BACKOFF)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return f"ProgressDaemon(rank={self._world_rank}, {state})"
