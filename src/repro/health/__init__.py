"""repro.health — liveness monitoring and live elasticity.

Three pieces turn elasticity from a restart-time property into a live
property of a running :class:`~repro.api.Session`:

* :class:`HealthMonitor` — classifies peer ranks from the monotonic
  heartbeat each rank's mailbox publishes (``alive`` / ``straggler`` /
  ``suspect`` / ``dead``) and drives
  :meth:`~repro.smpi.world.World.fail_rank` proactively, so blocked
  collectives wake as soon as a peer is declared dead instead of waiting
  out the ``DeadlockError`` timeout.
* :class:`ProgressDaemon` — a per-session background thread that beats
  this rank's heartbeat, advances in-flight overlapped pipelined steps
  (``test()`` polling with backoff — ``overlap=True`` steps complete
  without an explicit access), runs the monitor, and reports
  ``repro.health.*`` gauges/counters through :mod:`repro.obs`.
* :class:`ElasticSession` — a multi-rank in-process session that can
  :meth:`~ElasticSession.rescale` mid-stream: the pending pipelined step
  is drained, the distributed factors are gathered in memory (no disk
  checkpoint), rows are re-partitioned, the communicator is rebuilt at
  the new size, and ``fit_stream`` resumes exactly where it left off.
  ``RestartPolicy(mode="live")`` routes crash recovery through an
  in-place shrink on this session instead of restart-and-replay.

Everything here is off by default (``HealthConfig.enabled=False``) and
costs nothing while disabled.
"""

from .daemon import ProgressDaemon, communicator_world
from .elastic import ElasticSession
from .monitor import (
    RANK_ALIVE,
    RANK_DEAD,
    RANK_STRAGGLER,
    RANK_SUSPECT,
    HealthMonitor,
)

__all__ = [
    "HealthMonitor",
    "ProgressDaemon",
    "ElasticSession",
    "communicator_world",
    "RANK_ALIVE",
    "RANK_STRAGGLER",
    "RANK_SUSPECT",
    "RANK_DEAD",
]
