"""Heartbeat-based peer health classification.

Each rank's world-context :class:`~repro.smpi.mailbox.Mailbox` carries a
monotonic liveness beat (``Mailbox.beat``), published by the rank's
:class:`~repro.health.daemon.ProgressDaemon`.  A :class:`HealthMonitor`
reads the beat ages of every world rank and classifies them:

========== =====================================================
state      beat age
========== =====================================================
alive      ``<= straggler_factor * heartbeat_interval``
straggler  ``<= suspect_after``
suspect    ``<= dead_after`` (default ``2 * suspect_after``)
dead       older — escalated to ``World.fail_rank``
========== =====================================================

Escalation is the point: a dead rank's peers are typically *blocked* in a
collective waiting for traffic that will never arrive.  ``fail_rank``
wakes them with :class:`~repro.smpi.exceptions.FailedRankError`
immediately, instead of letting the mailbox deadlock timeout (minutes)
expire.  Ranks that finish their job cleanly are *retired*
(``World.retire_rank``) and never escalated, however stale their beat.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..config import HealthConfig
from ..exceptions import HealthError
from ..obs import runtime as _obs
from ..smpi.world import World

__all__ = [
    "HealthMonitor",
    "RANK_ALIVE",
    "RANK_STRAGGLER",
    "RANK_SUSPECT",
    "RANK_DEAD",
]

#: Peer classifications, ordered by severity.
RANK_ALIVE = "alive"
RANK_STRAGGLER = "straggler"
RANK_SUSPECT = "suspect"
RANK_DEAD = "dead"


class HealthMonitor:
    """Classifies the ranks of one :class:`~repro.smpi.world.World` from
    their heartbeat ages and escalates dead ones.

    Parameters
    ----------
    world:
        The world whose ranks to watch.  The monitor attaches itself as
        ``world.health`` so other subsystems (e.g. serving) can consult
        peer health before committing to a collective.
    config:
        The :class:`~repro.config.HealthConfig` thresholds.
    """

    def __init__(self, world: World, config: HealthConfig) -> None:
        self._world = world
        self._config = config
        world.health = self

    @property
    def world(self) -> World:
        return self._world

    @property
    def config(self) -> HealthConfig:
        return self._config

    # -- classification ----------------------------------------------------
    def observe(self, now: Optional[float] = None) -> Dict[int, str]:
        """Classify every world rank (no side effects).

        Already-failed ranks are ``dead``; retired (cleanly departed)
        ranks are ``alive`` regardless of beat age.
        """
        if now is None:
            now = time.monotonic()
        cfg = self._config
        alive_age = cfg.straggler_factor * cfg.heartbeat_interval
        dead_age = cfg.effective_dead_after
        failed = self._world.failed_ranks()
        retired = self._world.retired_ranks()
        states: Dict[int, str] = {}
        for rank in range(self._world.size):
            if rank in failed:
                states[rank] = RANK_DEAD
            elif rank in retired:
                states[rank] = RANK_ALIVE
            else:
                age = now - self._world.last_beat(rank)
                if age <= alive_age:
                    states[rank] = RANK_ALIVE
                elif age <= cfg.suspect_after:
                    states[rank] = RANK_STRAGGLER
                elif age <= dead_age:
                    states[rank] = RANK_SUSPECT
                else:
                    states[rank] = RANK_DEAD
        return states

    def has_unhealthy(self) -> bool:
        """Whether any rank is currently suspect or dead — the signal
        serving uses to route flushes away from a shard group *before*
        its collective fails."""
        states = self.observe()
        return any(
            state in (RANK_SUSPECT, RANK_DEAD) for state in states.values()
        )

    # -- escalation --------------------------------------------------------
    def check(self, now: Optional[float] = None) -> Dict[int, str]:
        """Classify, escalate newly-dead ranks, publish metrics.

        A rank whose beat age exceeds ``dead_after`` is failed in the
        world (``World.fail_rank``) with a :class:`~repro.exceptions.
        HealthError` naming the monitor — idempotent, so concurrent
        monitors on several ranks may race to declare the same death.
        """
        states = self.observe(now)
        already_failed = self._world.failed_ranks()
        declared = 0
        for rank, state in states.items():
            if state == RANK_DEAD and rank not in already_failed:
                self._world.fail_rank(
                    rank,
                    HealthError(
                        f"rank {rank} missed heartbeats for more than "
                        f"{self._config.effective_dead_after:.3f}s and was "
                        f"declared dead by the health monitor"
                    ),
                )
                declared += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            registry = st.registry
            registry.counter("repro.health.checks").inc()
            if declared:
                registry.counter("repro.health.deaths_declared").inc(declared)
            counts = {
                RANK_ALIVE: 0,
                RANK_STRAGGLER: 0,
                RANK_SUSPECT: 0,
                RANK_DEAD: 0,
            }
            for state in states.values():
                counts[state] += 1
            registry.gauge("repro.health.alive_ranks").set(counts[RANK_ALIVE])
            registry.gauge("repro.health.straggler_ranks").set(
                counts[RANK_STRAGGLER]
            )
            registry.gauge("repro.health.suspect_ranks").set(
                counts[RANK_SUSPECT]
            )
            registry.gauge("repro.health.dead_ranks").set(counts[RANK_DEAD])
        return states

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HealthMonitor(size={self._world.size}, "
            f"suspect_after={self._config.suspect_after}, "
            f"dead_after={self._config.effective_dead_after})"
        )
