"""``ElasticSession`` — live mid-stream rescale without replay.

A single :class:`~repro.api.Session` refuses to host a multi-rank
``"threads"`` backend because each rank needs its own session object.
``ElasticSession`` is the one deliberate exception: it *owns* every rank
of an in-process world — the per-rank communicators, the per-rank
:class:`~repro.core.parallel.ParSVDParallel` drivers, and (with
``HealthConfig.enabled``) a :class:`~repro.health.monitor.HealthMonitor`
plus per-rank :class:`~repro.health.daemon.ProgressDaemon` threads.
Because the coordinator sees the *global* stream and all of the
distributed state at once, elasticity becomes a live property:

* :meth:`ElasticSession.rescale` drains the pending pipelined step,
  gathers the distributed factors **in memory** (no disk checkpoint),
  re-partitions the rows over a freshly built communicator at the new
  size, and resumes ``fit_stream`` exactly where it left off.
* A rank crash mid-batch (an injected fault, a
  :class:`~repro.smpi.exceptions.FailedRankError` from the health
  monitor's ``fail_rank`` escalation) triggers the same machinery as an
  in-place shrink: restore the last in-memory snapshot, rebuild one rank
  smaller, re-ingest the few batches held in the in-memory tail buffer.
  The *stream source* is never rewound — ``repro.recovery.
  replayed_batches`` stays zero — and each recovery is metered as
  ``repro.recovery.live_rescales``.

Snapshot protocol
-----------------
After every ``RestartPolicy.checkpoint_every`` ingested batches the
session drains in-flight steps and snapshots the gathered factors
(modes, singular values, counters).  Batches ingested since the snapshot
are kept in a bounded in-memory tail; a recovery restores the snapshot
and re-feeds the tail through the normal ingest path, so the recovered
trajectory is the exact batch sequence of an uninterrupted run.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

import numpy as np

from ..api import Session, SessionResult, checkpoint_run_config
from ..config import (
    BackendConfig,
    ObservabilityConfig,
    RestartPolicy,
    RunConfig,
    SolverConfig,
    StreamConfig,
)
from ..core.checkpoint import normalize_checkpoint_path, read_checkpoint
from ..core.parallel import ParSVDParallel
from ..exceptions import (
    CommunicatorError,
    ConfigurationError,
    DataFormatError,
    RescaleError,
)
from ..faults import runtime as _faults
from ..obs import runtime as _obs
from ..smpi.exceptions import FailedRankError
from ..smpi.factory import create_communicator
from ..utils.partition import block_partition
from .daemon import ProgressDaemon, communicator_world
from .monitor import HealthMonitor

__all__ = ["ElasticSession"]


@dataclasses.dataclass
class _Snapshot:
    """In-memory recovery point: the gathered factorization state."""

    modes: np.ndarray  # global (n_dof, K), stacked in rank order
    singular_values: np.ndarray
    iteration: int
    n_seen: int


class ElasticSession(Session):
    """A multi-rank in-process session that can rescale mid-stream.

    Parameters
    ----------
    config:
        The :class:`~repro.config.RunConfig` to run.  The backend must be
        the in-process ``"threads"`` backend (any size) — live rescale
        needs every rank's state in one address space.
    policy:
        The :class:`~repro.config.RestartPolicy` governing recovery:
        ``checkpoint_every`` sets the in-memory snapshot period (in
        batches), ``max_restarts`` bounds live recoveries, ``min_size``
        floors the shrink.  Defaults to ``RestartPolicy(mode="live")``.
    solver, backend, stream, obs:
        Section shortcuts, as on :class:`~repro.api.Session`.

    Notes
    -----
    ``fit_stream`` consumes the **global** source once (``partition=True``
    semantics are built in: each rank ingests its canonical
    :func:`~repro.utils.partition.block_partition` row block, re-derived
    after every rescale).  :meth:`result` always returns the *global*
    modes — the session owns all ranks, so there is no rank-local view.
    """

    def __init__(
        self,
        config: Optional[RunConfig] = None,
        *,
        policy: Optional[RestartPolicy] = None,
        solver: Optional[SolverConfig] = None,
        backend: Optional[BackendConfig] = None,
        stream: Optional[StreamConfig] = None,
        obs: Optional[ObservabilityConfig] = None,
    ) -> None:
        cfg = config if config is not None else RunConfig()
        if not isinstance(cfg, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(cfg).__name__}"
            )
        sections = {
            key: value
            for key, value in (
                ("solver", solver),
                ("backend", backend),
                ("stream", stream),
                ("obs", obs),
            )
            if value is not None
        }
        if sections:
            cfg = cfg.replace(**sections)
        if cfg.backend.name != "threads":
            raise ConfigurationError(
                f"ElasticSession runs on the in-process 'threads' backend "
                f"(live rescale rebuilds the world in this address space); "
                f"got backend {cfg.backend.name!r}"
            )
        if policy is None:
            policy = RestartPolicy(mode="live")
        elif not isinstance(policy, RestartPolicy):
            raise ConfigurationError(
                f"policy must be a RestartPolicy, got {type(policy).__name__}"
            )
        self._config = cfg
        self._policy = policy
        self._obs_installed = False
        if cfg.obs.enabled:
            _obs.install(metrics=cfg.obs.metrics, trace=cfg.obs.trace)
            self._obs_installed = True
        self._faults_installed = False
        if cfg.faults.active:
            # One refcounted install for the whole elastic run: the
            # controller survives every internal rebuild, so fire-once
            # crash specs stay fired and the recovered stream runs clean.
            _faults.install(cfg.faults)
            self._faults_installed = True
        # Base-class plumbing the inherited helpers rely on.
        self._owns_comm = True
        self._health_daemon = None  # per-rank daemons live in _daemons
        self._comm: Any = None
        self._driver = None
        self._closed = False
        self._prefetch_streams = []
        self._auto_checkpoint = None
        # Elastic state.
        self._size = cfg.backend.size
        self._comms: Tuple[Any, ...] = ()
        self._drivers: List[ParSVDParallel] = []
        self._monitor: Optional[HealthMonitor] = None
        self._daemons: List[ProgressDaemon] = []
        self._snapshot: Optional[_Snapshot] = None
        self._tail: List[np.ndarray] = []
        self._queue: Deque[np.ndarray] = deque()
        self._n_dof: Optional[int] = None
        self._restarts = 0
        self._live_rescales = 0
        try:
            self._build(self._size)
        except BaseException:
            if self._obs_installed:
                self._obs_installed = False
                _obs.uninstall()
            if self._faults_installed:
                self._faults_installed = False
                _faults.uninstall()
            raise

    # -- world lifecycle ---------------------------------------------------
    def _build(
        self, size: int, restore: Optional[_Snapshot] = None
    ) -> None:
        """(Re)build the communicator world, drivers and health plumbing
        at ``size`` ranks, optionally restoring a gathered snapshot."""
        bcfg = self._config.backend
        comms = create_communicator(
            "threads",
            size,
            timeout=bcfg.timeout,
            irecv_buffer_bytes=bcfg.irecv_buffer_bytes,
        )
        if size == 1:
            comms = (comms,)
        self._comms = tuple(comms)
        self._comm = self._comms[0]
        self._size = size
        drivers: List[ParSVDParallel] = []
        for i, comm in enumerate(self._comms):
            driver = ParSVDParallel(comm, solver=self._config.solver)
            if restore is not None:
                # The in-memory twin of from_checkpoint's gathered-restart
                # path: each rank takes its canonical block_partition row
                # block of the snapshot's global modes.
                part = block_partition(restore.modes.shape[0], size)
                driver._ulocal = np.array(restore.modes[part.slice_of(i), :])
                driver._singular_values = np.array(
                    restore.singular_values, copy=True
                )
                driver._iteration = restore.iteration
                driver._n_seen = restore.n_seen
                driver._n_dof = driver._ulocal.shape[0]
                driver._invalidate_modes()
            drivers.append(driver)
        self._drivers = drivers
        self._monitor = None
        self._daemons = []
        hcfg = self._config.health
        if hcfg.enabled:
            world, _ = communicator_world(self._comms[0])
            if world is not None:
                self._monitor = HealthMonitor(world, hcfg)
            for i, (comm, driver) in enumerate(zip(self._comms, drivers)):
                world, world_rank = communicator_world(comm)
                daemon = ProgressDaemon(
                    hcfg.heartbeat_interval,
                    world=world,
                    world_rank=world_rank,
                    advance=driver.try_finalize_pending,
                    # One monitor per world is enough; rank 0's daemon
                    # runs it (fail_rank is idempotent anyway).
                    monitor=self._monitor if i == 0 else None,
                )
                self._daemons.append(daemon.start())

    def _teardown_workers(self, exc: Optional[BaseException]) -> None:
        """Discard the current world: stop daemons, abort in-flight
        steps, and (on a failure path) fail every old-world rank so any
        straggler thread blocked in an old mailbox wakes promptly."""
        daemons, self._daemons = self._daemons, []
        for daemon in daemons:
            daemon.stop(retire=True)
        drivers, self._drivers = self._drivers, []
        for driver in drivers:
            try:
                driver.abort_pending()
            except Exception:  # pragma: no cover - defensive
                pass
        world = None
        if self._comms:
            world, _ = communicator_world(self._comms[0])
        if world is not None and exc is not None:
            for rank in range(world.size):
                world.fail_rank(rank, exc)
        if world is not None:
            world.health = None
        self._monitor = None
        self._comms = ()
        self._comm = None

    # -- SPMD fan-out ------------------------------------------------------
    def _spmd(self, fn: Callable[[int, ParSVDParallel], None]) -> None:
        """Run ``fn(rank, driver)`` once per rank, concurrently.

        Mirrors the SPMD executor's failure contract: a worker that dies
        with anything but :class:`FailedRankError` fails its rank in the
        world first, so peers blocked in collectives wake immediately.
        The most-causal error (the non-``FailedRankError`` one, when
        present) is re-raised to the coordinator.
        """
        size = self._size
        if size == 1:
            fn(0, self._drivers[0])
            return
        errors: List[Optional[BaseException]] = [None] * size

        def target(i: int) -> None:
            try:
                fn(i, self._drivers[i])
            except BaseException as exc:  # noqa: BLE001 - worker boundary
                errors[i] = exc
                if not isinstance(exc, FailedRankError):
                    world, world_rank = communicator_world(self._comms[i])
                    if world is not None:
                        world.fail_rank(world_rank, exc)

        threads = [
            threading.Thread(
                target=target,
                args=(i,),
                name=f"repro-elastic-{i}",
                daemon=True,
            )
            for i in range(size)
        ]
        for thread in threads:
            thread.start()
        join_timeout = self._config.backend.timeout + 5.0
        for thread in threads:
            thread.join(timeout=join_timeout)
        if any(thread.is_alive() for thread in threads):
            raise RescaleError(
                f"elastic workers did not finish within {join_timeout:.0f}s "
                f"(a worker is stuck outside the communicator)"
            )
        root: Optional[BaseException] = None
        for exc in errors:
            if exc is not None and not isinstance(exc, FailedRankError):
                root = exc
                break
        if root is None:
            for exc in errors:
                if exc is not None:
                    root = exc
                    break
        if root is not None:
            raise root

    # -- ingest / snapshot / recovery --------------------------------------
    @property
    def _initialized(self) -> bool:
        return bool(self._drivers) and self._drivers[0].initialized

    def _partition(self):
        assert self._n_dof is not None
        return block_partition(self._n_dof, self._size)

    def _ingest_one(self, batch: np.ndarray) -> None:
        if self._n_dof is None:
            self._n_dof = int(batch.shape[0])
        elif batch.shape[0] != self._n_dof:
            raise ConfigurationError(
                f"batch has {batch.shape[0]} rows, stream declared "
                f"{self._n_dof}"
            )
        part = self._partition()

        def step(i: int, driver: ParSVDParallel) -> None:
            block = batch[part.slice_of(i), :]
            if driver.initialized:
                driver.incorporate_data(block)
            else:
                driver.initialize(block)

        self._spmd(step)
        self._tail.append(batch)
        every = max(int(self._policy.checkpoint_every), 1)
        if self._snapshot is None or len(self._tail) >= every:
            self._drain()
            self._take_snapshot()
            self._tail = []

    def _drain(self) -> None:
        """Finalize every rank's in-flight pipelined step (collective)."""
        if not any(driver.pending_update for driver in self._drivers):
            return
        self._spmd(lambda i, driver: driver._finalize_pending())

    def _take_snapshot(self) -> None:
        """Gather the distributed factors in memory (drained state)."""
        if not self._initialized:
            return
        driver0 = self._drivers[0]
        self._snapshot = _Snapshot(
            # vstack copies — the snapshot must not alias workspace
            # buffers the next step recycles.
            modes=np.vstack(
                [np.asarray(driver._ulocal) for driver in self._drivers]
            ),
            singular_values=np.array(driver0._singular_values, copy=True),
            iteration=int(driver0._iteration),
            n_seen=int(driver0._n_seen),
        )

    def _meter_rescale(self) -> None:
        self._live_rescales += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.recovery.live_rescales").inc()

    def _recover(self, exc: BaseException) -> None:
        """In-place shrink: restore the snapshot one rank smaller and
        queue the tail batches for re-ingest (no stream replay)."""
        self._restarts += 1
        if self._restarts > self._policy.max_restarts:
            raise exc
        new_size = self._size
        if new_size > self._policy.min_size:
            new_size -= 1
        tail, self._tail = self._tail, []
        # The batch that failed mid-ingest is still at the queue head; if
        # the failure hit the post-ingest drain it is *also* the last tail
        # entry — drop the duplicate.
        if tail and self._queue and tail[-1] is self._queue[0]:
            tail.pop()
        self._queue.extendleft(reversed(tail))
        self._teardown_workers(exc)
        self._build(new_size, restore=self._snapshot)
        self._meter_rescale()

    def _pump(self) -> None:
        """Ingest every queued batch, recovering live on failure."""
        while self._queue:
            batch = self._queue[0]
            try:
                self._ingest_one(batch)
            except CommunicatorError as exc:
                self._recover(exc)
                continue
            self._queue.popleft()

    def _sync(self) -> None:
        """Drain queue and in-flight steps, recovering live on failure."""
        while True:
            self._pump()
            try:
                self._drain()
                return
            except CommunicatorError as exc:
                self._recover(exc)

    # -- public surface ----------------------------------------------------
    @property
    def size(self) -> int:
        """Current rank count (changes across rescales)."""
        return self._size

    @property
    def live_rescales(self) -> int:
        """How many times this session rebuilt its world in place."""
        return self._live_rescales

    @property
    def driver(self) -> ParSVDParallel:
        """Rank 0's driver (read-only convenience — counters, config)."""
        self._require_open()
        return self._drivers[0]

    def rescale(self, new_size: int) -> "ElasticSession":
        """Rebuild the world at ``new_size`` ranks, mid-stream.

        Drains the pending pipelined step, gathers the distributed
        factors in memory, re-partitions the rows and resumes exactly
        where the stream left off — bit-identical to a fixed-size run.
        Metered as ``repro.recovery.live_rescales``.
        """
        self._require_open()
        if not isinstance(new_size, int) or isinstance(new_size, bool):
            raise RescaleError(
                f"new_size must be an int >= 1, got {new_size!r}"
            )
        if new_size < 1:
            raise RescaleError(
                f"new_size must be an int >= 1, got {new_size!r}"
            )
        if new_size == self._size:
            return self
        if self._initialized:
            self._sync()
            self._take_snapshot()
            self._tail = []
        self._teardown_workers(None)
        self._build(new_size, restore=self._snapshot)
        self._meter_rescale()
        return self

    def fit_stream(
        self,
        source: Any = None,
        *,
        partition: bool = True,
        replay: Optional[bool] = None,
    ) -> "ElasticSession":
        """Stream a **global** source through all ranks.

        ``partition`` must stay ``True`` — the coordinator owns the global
        view and row-partitions each batch itself (re-deriving the blocks
        after every rescale).  ``replay`` is ignored: recovery re-ingests
        from the in-memory tail buffer, never from the source.
        """
        self._require_open()
        if not partition:
            raise ConfigurationError(
                "ElasticSession ingests global sources; partition=False "
                "(rank-local batches) requires per-rank sessions "
                "(Session.run)"
            )
        stream = self._resolve_stream(source, False)
        got_any = self._initialized
        try:
            for batch in stream:
                # Own the memory: the tail buffer must survive source
                # reuse and workspace recycling across rescales.
                self._queue.append(np.array(batch, copy=True))
                self._pump()
                got_any = True
        except BaseException:
            from ..data.streams import PrefetchStream

            if isinstance(stream, PrefetchStream):
                stream.abort()
            raise
        if not got_any:
            raise ConfigurationError(
                "fit_stream received an empty batch stream"
            )
        return self

    def initialize(self, batch: np.ndarray) -> "ElasticSession":
        """Manual stepping: ingest the first *global* batch."""
        return self.incorporate_data(batch)

    def incorporate_data(self, batch: np.ndarray) -> "ElasticSession":
        """Manual stepping: ingest one more *global* batch."""
        self._require_open()
        self._queue.append(np.array(batch, copy=True))
        self._pump()
        return self

    def result(self) -> SessionResult:
        """Assemble and return the current *global* factorization."""
        self._require_open()
        if not self._initialized:
            raise ConfigurationError(
                "this Session has not ingested any data yet; call "
                "fit_stream()/initialize() (or ElasticSession.resume) first"
            )
        while True:
            self._sync()
            try:
                if self._config.solver.gather == "none":
                    modes: Optional[np.ndarray] = np.vstack(
                        [driver.local_modes for driver in self._drivers]
                    )
                else:
                    assembled: List[Optional[np.ndarray]] = [None] * self._size

                    def step(i: int, driver: ParSVDParallel) -> None:
                        assembled[i] = driver.assemble_modes()

                    self._spmd(step)
                    modes = assembled[0]
                driver0 = self._drivers[0]
                return SessionResult(
                    modes=modes,
                    singular_values=np.array(
                        driver0.singular_values, copy=True
                    ),
                    iteration=driver0.iteration,
                    n_seen=driver0.n_seen,
                )
            except CommunicatorError as exc:
                self._recover(exc)

    @property
    def modes(self) -> np.ndarray:
        """Global modes (drains in-flight steps; recovers live)."""
        modes = self.result().modes
        assert modes is not None
        return modes

    @property
    def singular_values(self) -> np.ndarray:
        """Current singular values (drains in-flight steps)."""
        return self.result().singular_values

    def save_checkpoint(self, path, gathered: bool = False) -> str:
        """Checkpoint the streaming state (all ranks write/participate)."""
        self._require_open()
        if not self._initialized:
            raise ConfigurationError(
                "this Session has not ingested any data yet; call "
                "fit_stream()/initialize() (or ElasticSession.resume) first"
            )
        self._sync()
        written: List[Optional[str]] = [None] * self._size

        def step(i: int, driver: ParSVDParallel) -> None:
            written[i] = driver.save_checkpoint(
                path, gathered=gathered, run_config=self._config
            )

        self._spmd(step)
        assert written[0] is not None
        return written[0]

    @classmethod
    def resume(
        cls,
        path,
        *,
        comm: Any = None,
        config: Optional[RunConfig] = None,
        backend: Optional[BackendConfig] = None,
        policy: Optional[RestartPolicy] = None,
    ) -> "ElasticSession":
        """Reopen a **gathered** checkpoint as a live elastic session
        (restarts at any rank count, like the gathered restart path)."""
        if comm is not None:
            raise ConfigurationError(
                "ElasticSession owns its whole world; adopting a single "
                "rank's communicator is a per-rank Session concern"
            )
        cfg = config if config is not None else checkpoint_run_config(path)
        if backend is not None:
            cfg = cfg.replace(backend=backend)
        state = read_checkpoint(normalize_checkpoint_path(path))
        if state["kind"] != "gathered":
            raise DataFormatError(
                f"{path}: elastic resume needs a gathered checkpoint "
                f"(kind={state['kind']!r}); write one with "
                f"save_checkpoint(..., gathered=True)"
            )
        session = cls(cfg, policy=policy)
        snapshot = _Snapshot(
            modes=np.asarray(state["modes"]),
            singular_values=np.asarray(state["singular_values"]),
            iteration=int(state["iteration"]),
            n_seen=int(state["n_seen"]),
        )
        session._snapshot = snapshot
        session._n_dof = int(snapshot.modes.shape[0])
        session._teardown_workers(None)
        session._build(session._size, restore=snapshot)
        return session

    def close(self, *, drop_pending: bool = False) -> None:
        """End the session: drain (or abort) in-flight steps, stop the
        health daemons, retire the ranks, release the world."""
        if self._closed:
            return
        self._closed = True
        streams, self._prefetch_streams = self._prefetch_streams, []
        try:
            if not drop_pending and self._drivers:
                try:
                    self._drain()
                except Exception:
                    drop_pending = True
        finally:
            self._teardown_workers(None)
            if drop_pending:
                for stream in streams:
                    stream.abort()
            if self._obs_installed:
                self._obs_installed = False
                _obs.uninstall()
            if self._faults_installed:
                self._faults_installed = False
                _faults.uninstall()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else (
            "fitted" if self._initialized else "fresh"
        )
        return (
            f"ElasticSession(size={self._size}, "
            f"K={self._config.solver.K}, "
            f"live_rescales={self._live_rescales}, {state})"
        )
