"""``repro.net`` — the async multi-tenant HTTP serving frontend.

The network door onto :mod:`repro.serving`: an asyncio HTTP server
(stdlib only) whose lifespan owns a single-rank
:class:`~repro.api.Session` and its :class:`~repro.serving.QueryEngine`
on a dedicated executor thread, with deadline-driven (SLO) flush
scheduling, per-tenant API-key auth, and job-table long-polling.  Start
it from the CLI (``repro serve``), in-process on a background thread
(:func:`start_in_thread` — tests/benchmarks), or embedded in your own
event loop (:class:`NetServer`).

Configured by the ``serving`` section of
:class:`~repro.config.RunConfig` (:class:`~repro.config.ServingConfig`):
host/port, ``flush_deadline_ms``, ``max_batch``,
``result_cache_entries`` and the tenant key list.
"""

from .auth import PUBLIC_TENANT, TenantAuth
from .client import ServingClient, ServingHTTPError
from .http import HttpError, Request, json_response, read_request
from .jobs import Job, JobTable
from .server import (
    DeadlineScheduler,
    NetServer,
    ServerHandle,
    serve_forever,
    start_in_thread,
)

__all__ = [
    "DeadlineScheduler",
    "HttpError",
    "Job",
    "JobTable",
    "NetServer",
    "PUBLIC_TENANT",
    "Request",
    "ServerHandle",
    "ServingClient",
    "ServingHTTPError",
    "TenantAuth",
    "json_response",
    "read_request",
    "serve_forever",
    "start_in_thread",
]
