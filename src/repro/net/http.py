"""Minimal HTTP/1.1 framing over asyncio streams — stdlib only.

The serving frontend (:mod:`repro.net.server`) deliberately takes no web
framework dependency: its protocol needs are one request shape (JSON in,
JSON out, keep-alive) and its traffic is machine-generated, so a small,
strict parser beats a new hard dependency.  This module is that parser:
:func:`read_request` frames one request off a stream (returning ``None``
on a clean EOF between requests), :func:`json_response` serialises one
response.  Anything outside the strict subset — chunked bodies, HTTP/0.9,
oversized headers — is rejected with the appropriate 4xx/5xx via
:class:`HttpError`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "json_response",
    "STATUS_PHRASES",
]

#: Reason phrases for the statuses the frontend emits.
STATUS_PHRASES = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

#: Hard caps: machine clients submitting query payloads, not browsers.
MAX_HEADER_BYTES = 32 * 1024
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024


class HttpError(Exception):
    """A malformed or unserviceable request, carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclasses.dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Any:
        """The body decoded as JSON; :class:`HttpError` 400 on garbage."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")

    def query_float(self, name: str) -> Optional[float]:
        """A float query parameter, or ``None`` when absent."""
        raw = self.query.get(name)
        if raw is None:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name}={raw!r} is not a number")
        if not value >= 0.0:
            raise HttpError(400, f"query parameter {name} must be >= 0, got {raw}")
        return value


async def read_request(
    reader: asyncio.StreamReader,
    *,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
) -> Optional[Request]:
    """Frame one request; ``None`` on EOF before any byte (keep-alive
    connection closed cleanly between requests)."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(413, f"request head exceeds {MAX_HEADER_BYTES} bytes")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n < 0:
            raise HttpError(400, f"bad Content-Length {length!r}")
        if n > max_body_bytes:
            raise HttpError(413, f"request body exceeds {max_body_bytes} bytes")
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body")
    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(
            split.query, keep_blank_values=True
        ).items()
    }
    return Request(
        method=method,
        path=split.path,
        query=query,
        headers=headers,
        body=body,
    )


def json_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Serialise one JSON response (status line + headers + body)."""
    body = (json.dumps(payload) + "\n").encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    headers.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body
