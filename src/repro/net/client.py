"""A minimal blocking client for the ``repro.net`` HTTP API.

Built on :mod:`http.client` (stdlib, one keep-alive connection per
instance, **not** thread-safe — use one client per thread), this is the
reference consumer of the wire protocol: the end-to-end tests, the load
benchmark and the CI smoke all drive the server through it, so protocol
drift breaks loudly in one place.

>>> client = ServingClient("127.0.0.1", 8080, api_key="s3cret")
>>> job = client.submit("burgers", snapshots, kind="project")
>>> coeffs = client.result(job, wait=5.0)
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Optional

import numpy as np

from ..exceptions import ServingError

__all__ = ["ServingClient", "ServingHTTPError"]


class ServingHTTPError(ServingError):
    """A non-2xx answer from the serving frontend."""

    def __init__(self, status: int, payload: Any) -> None:
        detail = payload.get("error") if isinstance(payload, dict) else payload
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class ServingClient:
    """One keep-alive connection to a :class:`~repro.net.NetServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        api_key: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    @classmethod
    def from_url(cls, url: str, **kwargs: Any) -> "ServingClient":
        """Construct from an ``http://host:port`` URL (what
        :attr:`~repro.net.ServerHandle.url` hands out)."""
        from urllib.parse import urlsplit

        split = urlsplit(url)
        if split.scheme != "http" or split.hostname is None:
            raise ServingError(f"expected an http://host:port URL, got {url!r}")
        return cls(split.hostname, split.port or 80, **kwargs)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- wire --------------------------------------------------------------
    def request(
        self, method: str, path: str, body: Any = None
    ) -> Any:
        """One round-trip; returns the decoded JSON payload, raising
        :class:`ServingHTTPError` on non-2xx statuses."""
        status, payload = self.request_raw(method, path, body)
        if not 200 <= status < 300:
            raise ServingHTTPError(status, payload)
        return payload

    def request_raw(self, method: str, path: str, body: Any = None):
        """Like :meth:`request` but returns ``(status, payload)`` without
        raising — what status-code tests assert on."""
        headers = {}
        if self.api_key is not None:
            headers["Authorization"] = f"Bearer {self.api_key}"
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        self._conn.request(method, path, body=data, headers=headers)
        response = self._conn.getresponse()
        raw = response.read()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = raw.decode("latin-1")
        return response.status, payload

    # -- API ---------------------------------------------------------------
    def submit(
        self,
        basis: str,
        payload: Any,
        *,
        kind: str = "project",
        version: Optional[int] = None,
    ) -> dict:
        """``POST /v1/query``; returns the job payload (``"job"`` id,
        ``"status"`` of ``"pending"`` or — on a result-cache hit —
        ``"done"`` with the result inline)."""
        if isinstance(payload, np.ndarray):
            payload = payload.tolist()
        body = {"basis": basis, "kind": kind, "payload": payload}
        if version is not None:
            body["version"] = version
        return self.request("POST", "/v1/query", body)

    def job(self, job_id: str, *, wait: Optional[float] = None) -> dict:
        """``GET /v1/jobs/{id}``, long-polling up to ``wait`` seconds."""
        path = f"/v1/jobs/{job_id}"
        if wait is not None:
            path += f"?wait={wait:g}"
        return self.request("GET", path)

    def result(self, job: Any, *, wait: float = 30.0):
        """The answer of ``job`` (an id or a submit payload): long-polls
        until done, then returns the value — arrays as ``np.ndarray``,
        reconstruction errors as ``float``.  :class:`ServingError` if
        the job is still pending after ``wait``."""
        job_id = job["job"] if isinstance(job, dict) else job
        if isinstance(job, dict) and job.get("status") == "done":
            payload = job
        else:
            payload = self.job(job_id, wait=wait)
        if payload.get("status") != "done":
            raise ServingError(
                f"job {job_id} still pending after wait={wait:g}s"
            )
        value = payload["result"]
        return np.asarray(value) if isinstance(value, list) else value

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self.request("GET", "/metrics")

    def healthz(self):
        """``GET /healthz``; returns ``(status_code, payload)`` — 503 is
        a legitimate (degraded) answer, not an error."""
        return self.request_raw("GET", "/healthz")
