"""Per-tenant API-key authentication for the serving frontend.

Tenants come from :class:`repro.config.TenantSpec` entries of the
``serving`` config section.  With no tenants configured, auth is *open*:
every request is attributed to the pseudo-tenant ``"public"`` (the
single-user / smoke-test mode).  With tenants configured, ``/v1/*``
requests must present a configured key — ``Authorization: Bearer <key>``
or ``X-API-Key: <key>`` — and are attributed (counted, job-isolated) to
the owning tenant.

Keys are matched with :func:`hmac.compare_digest`: constant-time
comparison is cheap insurance even though these are capability tokens,
not passwords.
"""

from __future__ import annotations

import hmac
from typing import Dict, Mapping, Optional, Tuple

from ..obs import runtime as _obs

__all__ = ["TenantAuth", "PUBLIC_TENANT"]

#: Tenant every request is attributed to when auth is disabled.
PUBLIC_TENANT = "public"

#: Per-tenant counter fields (also mirrored into the repro.obs registry
#: as ``repro.net.tenant.<name>.<field>``).
_FIELDS = ("requests", "queries", "errors")


class TenantAuth:
    """Authenticate requests against the configured tenant keys and keep
    per-tenant request counters."""

    def __init__(self, tenants: Tuple = ()) -> None:
        self._keys: Dict[str, str] = {t.key: t.name for t in tenants}
        self.enabled = bool(self._keys)
        names = [t.name for t in tenants] if tenants else [PUBLIC_TENANT]
        self._counters: Dict[str, Dict[str, int]] = {
            name: {field: 0 for field in _FIELDS} for name in names
        }
        self._unauthorized = 0

    @staticmethod
    def _presented_key(headers: Mapping[str, str]) -> Optional[str]:
        bearer = headers.get("authorization", "")
        if bearer.lower().startswith("bearer "):
            return bearer[7:].strip()
        return headers.get("x-api-key")

    def authenticate(self, headers: Mapping[str, str]) -> Optional[str]:
        """The tenant name this request acts as, or ``None`` (reject).

        Open mode (no tenants configured) admits everything as
        ``"public"``; otherwise the presented key must match a configured
        tenant's.
        """
        if not self.enabled:
            return PUBLIC_TENANT
        presented = self._presented_key(headers)
        if presented:
            for key, name in self._keys.items():
                if hmac.compare_digest(presented, key):
                    return name
        self._unauthorized += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.net.unauthorized").inc()
        return None

    def count(self, tenant: str, field: str) -> None:
        """Bump one per-tenant counter (and its obs mirror)."""
        counters = self._counters.setdefault(
            tenant, {f: 0 for f in _FIELDS}
        )
        counters[field] += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter(f"repro.net.tenant.{tenant}.{field}").inc()

    def snapshot(self) -> dict:
        """Per-tenant counters plus the global unauthorized count — the
        ``tenants`` block of ``/metrics``."""
        return {
            "enabled": self.enabled,
            "unauthorized": self._unauthorized,
            "tenants": {
                name: dict(fields)
                for name, fields in sorted(self._counters.items())
            },
        }
