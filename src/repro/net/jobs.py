"""Job bookkeeping for the serving frontend.

``POST /v1/query`` maps each accepted query onto a *job*: the engine's
:class:`~repro.serving.engine.QueryTicket` plus an :class:`asyncio.Event`
that long-polling ``GET /v1/jobs/{id}`` handlers wait on.  The split of
responsibilities is deliberate: tickets are fulfilled on the engine's
executor thread (a flush), while asyncio events may only be set on the
event-loop thread — so fulfilment is *observed* by the loop (via
:meth:`JobTable.signal_completed`, scheduled with
``call_soon_threadsafe`` after every flush) rather than pushed from the
engine thread.
"""

from __future__ import annotations

import asyncio
import collections
import itertools
import secrets
from typing import Dict, Optional

__all__ = ["Job", "JobTable"]


class Job:
    """One submitted query as the HTTP surface sees it."""

    __slots__ = ("id", "tenant", "ticket", "event")

    def __init__(self, job_id: str, tenant: str, ticket) -> None:
        self.id = job_id
        self.tenant = tenant
        self.ticket = ticket
        self.event = asyncio.Event()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.ticket.done else "pending"
        return f"Job({self.id}, tenant={self.tenant!r}, {state})"


class JobTable:
    """Loop-thread-only registry of live jobs, with bounded retention.

    Completed jobs are retained (so a client can fetch its result after
    the long-poll returned) but evicted oldest-first beyond ``capacity``.
    Pending jobs are never evicted — a job whose ticket has not been
    fulfilled must stay claimable, so under pathological backlog the
    table grows past capacity rather than dropping work.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._jobs: "collections.OrderedDict[str, Job]" = (
            collections.OrderedDict()
        )
        # Jobs whose ticket may still be pending: the subset
        # signal_completed() has to scan.  Moved out once signalled.
        self._unsignalled: Dict[str, Job] = {}
        self._seq = itertools.count(1)
        self._created = 0
        self._evicted = 0

    def create(self, tenant: str, ticket) -> Job:
        """Register a fresh job for ``ticket`` and return it."""
        job_id = f"j{next(self._seq):06d}-{secrets.token_hex(3)}"
        job = Job(job_id, tenant, ticket)
        self._jobs[job_id] = job
        self._created += 1
        if ticket.done:
            job.event.set()
        else:
            self._unsignalled[job_id] = job
        self._evict()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def signal_completed(self) -> int:
        """Set the events of jobs whose tickets a flush just fulfilled;
        returns how many were signalled.  Loop thread only."""
        signalled = [
            job_id
            for job_id, job in self._unsignalled.items()
            if job.ticket.done
        ]
        for job_id in signalled:
            job = self._unsignalled.pop(job_id)
            job.event.set()
        if signalled:
            self._evict()
        return len(signalled)

    def _evict(self) -> None:
        # Oldest-first over *signalled* jobs only (insertion order is
        # creation order; pending jobs are skipped, not dropped).
        if len(self._jobs) <= self.capacity:
            return
        for job_id in list(self._jobs):
            if len(self._jobs) <= self.capacity:
                break
            if job_id in self._unsignalled:
                continue
            del self._jobs[job_id]
            self._evicted += 1

    def __len__(self) -> int:
        return len(self._jobs)

    def stats(self) -> dict:
        """Counters for ``/metrics``."""
        return {
            "created": self._created,
            "live": len(self._jobs),
            "pending": len(self._unsignalled),
            "evicted": self._evicted,
        }
