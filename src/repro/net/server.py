"""``repro.net`` server core — the async door onto a serving ``Session``.

Architecture
------------
One :class:`NetServer` owns, for its lifespan:

* a single-rank :class:`~repro.api.Session` and the
  :class:`~repro.serving.QueryEngine` built over it — living on a
  **dedicated single-thread executor**, so every engine operation
  (submit, flush, stats) is serialised onto one thread and the engine
  needs no locking of its own;
* an asyncio HTTP/1.1 server (:mod:`repro.net.http`, stdlib only)
  multiplexing client connections on the event loop;
* a :class:`DeadlineScheduler` — a background thread that polls
  :meth:`~repro.serving.QueryEngine.flush_due` *through the same
  executor* and flushes once the oldest pending ticket has exhausted
  its ``flush_deadline_ms`` latency budget.  The engine itself never
  flushes spontaneously (flushing is collective in the SPMD contract);
  the scheduler is the missing actor that turns size-watermark batching
  into an SLO: a lone query is answered within its deadline instead of
  waiting for ``max_batch - 1`` friends;
* a :class:`~repro.net.jobs.JobTable` mapping job ids to tickets, with
  asyncio events the long-poll handlers await — set on the loop thread
  after each flush (``call_soon_threadsafe``), never from the engine
  thread directly.

Endpoints (JSON in / JSON out)::

    POST /v1/query        {"basis", "kind", "payload", ["version"]}
                          -> 202 {"job", "status": "pending"}  (queued)
                             200 {"job", "status": "done", ...} (cache hit)
    GET  /v1/jobs/{id}    ?wait=SECONDS long-polls until fulfilled
    GET  /metrics         repro.obs registry + engine/tenant/job counters
    GET  /healthz         repro.health rank states; 503 when degraded

``/v1/*`` requests are authenticated per tenant
(:class:`~repro.net.auth.TenantAuth`) when ``serving.tenants`` is
configured; jobs are tenant-isolated (a tenant polling another tenant's
job id gets 404, not 403 — existence is not leaked).  ``/metrics`` and
``/healthz`` stay open: they are operator probes, not tenant surface.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import threading
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..api import RunConfig, Session
from ..exceptions import (
    BasisNotFoundError,
    ConfigurationError,
    ServingError,
    ShapeError,
)
from ..obs import runtime as _obs
from .auth import TenantAuth
from .http import (
    DEFAULT_MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    HttpError,
    Request,
    json_response,
    read_request,
)
from .jobs import JobTable

__all__ = ["DeadlineScheduler", "NetServer", "ServerHandle", "start_in_thread", "serve_forever"]

#: Long-poll ``?wait=`` is capped here so a client typo cannot pin a
#: handler for an hour.
MAX_WAIT_S = 30.0


class DeadlineScheduler:
    """Background thread enforcing the flush-latency SLO.

    Polls ``engine.flush_due()`` — and, when due, runs ``engine.flush()``
    — **through the engine's dedicated executor**, so scheduler-driven
    flushes serialise with request-driven submits instead of racing
    them.  ``on_flush(n)`` fires (on the scheduler thread) after every
    non-empty flush; :class:`NetServer` uses it to wake long-pollers via
    ``call_soon_threadsafe``.

    The poll interval defaults to a quarter of the engine's
    ``flush_deadline_ms`` (clamped to [1 ms, 50 ms]): fine enough that a
    deadline overshoots by at most ~25%, coarse enough that an idle
    server burns no measurable CPU.
    """

    def __init__(
        self,
        engine,
        executor: concurrent.futures.Executor,
        *,
        on_flush=None,
        poll_interval_s: Optional[float] = None,
    ) -> None:
        if poll_interval_s is None:
            deadline_ms = engine.flush_deadline_ms or 200.0
            poll_interval_s = min(max(deadline_ms / 4000.0, 0.001), 0.05)
        if not poll_interval_s > 0.0:
            raise ServingError(
                f"poll_interval_s must be positive, got {poll_interval_s}"
            )
        self.engine = engine
        self.executor = executor
        self.poll_interval_s = poll_interval_s
        self.on_flush = on_flush
        self.flushes = 0
        self.queries_flushed = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def _tick(self) -> int:
        # Runs on the engine executor: flush_due + flush are one atomic
        # step with respect to submits.
        if self.engine.flush_due():
            return self.engine.flush()
        return 0

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                flushed = self.executor.submit(self._tick).result()
            except RuntimeError:
                # Executor shut down under us — the server is stopping.
                return
            if flushed:
                self.flushes += 1
                self.queries_flushed += flushed
                st = _obs.state()
                if st is not None and st.registry is not None:
                    st.registry.counter("repro.net.deadline_flushes").inc()
                if self.on_flush is not None:
                    self.on_flush(flushed)

    def start(self) -> "DeadlineScheduler":
        if self._thread is not None:
            raise ServingError("DeadlineScheduler is already running")
        self._thread = threading.Thread(
            target=self._run, name="repro-net-deadline", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def stats(self) -> dict:
        return {
            "poll_interval_s": self.poll_interval_s,
            "flushes": self.flushes,
            "queries_flushed": self.queries_flushed,
        }


class NetServer:
    """The asyncio HTTP serving frontend over one engine-owning session.

    Parameters
    ----------
    store:
        The :class:`~repro.serving.ModeBaseStore` (or ``None`` with a
        ``session`` whose engine uses in-memory bases) queries resolve
        against.
    config:
        A :class:`~repro.config.RunConfig`; its ``serving`` section
        supplies host/port/deadline/batch/cache/tenant knobs, its other
        sections configure the owned session (obs, health, ...).  The
        backend must be single-rank — the frontend broadcasts nothing,
        so a multi-rank engine would deadlock on its collectives.
    session:
        Adopt an existing (open, single-rank) session instead of owning
        one.  The caller keeps responsibility for closing it.
    """

    def __init__(
        self,
        store: Any,
        config: Optional[RunConfig] = None,
        *,
        session: Optional[Session] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        cfg = config if config is not None else RunConfig()
        if not isinstance(cfg, RunConfig):
            raise ConfigurationError(
                f"config must be a RunConfig, got {type(cfg).__name__}"
            )
        if session is None and cfg.backend.size > 1:
            raise ConfigurationError(
                f"repro.net serves from a single-rank Session; backend "
                f"{cfg.backend.name!r} has size {cfg.backend.size} — use "
                f"size=1 (queries fan out as batched GEMMs, not ranks)"
            )
        self._config = cfg
        self._scfg = cfg.serving
        self._store = store
        self._session = session
        self._owns_session = session is None
        self._max_body_bytes = max_body_bytes
        self._engine = None
        self._executor: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._scheduler: Optional[DeadlineScheduler] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._auth = TenantAuth(self._scfg.tenants)
        self._jobs = JobTable()
        self._requests = 0
        self._errors = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> "NetServer":
        """Bind the listener and bring up session, engine and scheduler."""
        if self._server is not None:
            raise ServingError("NetServer is already started")
        self._loop = asyncio.get_running_loop()
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-net-engine"
        )

        def build():
            # Built on the engine thread so the session, its
            # communicator and the engine live where they are used.
            session = self._session
            if session is None:
                session = Session(self._config)
            engine = session.query_engine(
                self._store,
                flush_threshold=self._scfg.max_batch,
                flush_deadline_ms=self._scfg.flush_deadline_ms,
                result_cache_entries=self._scfg.result_cache_entries,
            )
            return session, engine

        try:
            self._session, self._engine = await self._loop.run_in_executor(
                self._executor, build
            )
            self._scheduler = DeadlineScheduler(
                self._engine, self._executor, on_flush=self._flush_hook
            ).start()
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self._scfg.host,
                port=self._scfg.port,
                limit=MAX_HEADER_BYTES,
            )
        except BaseException:
            await self.stop()
            raise
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.gauge("repro.net.serving").set(1.0)
        return self

    async def stop(self) -> None:
        """Tear everything down in dependency order; idempotent."""
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        scheduler, self._scheduler = self._scheduler, None
        if scheduler is not None:
            scheduler.stop()
        executor, self._executor = self._executor, None
        session, engine = self._session, self._engine
        self._engine = None
        if executor is not None:
            if self._owns_session and session is not None:
                self._session = None
                # Final flush answers still-queued tickets, then the
                # session releases its communicator — both on the engine
                # thread, like every other engine op.

                def teardown():
                    if engine is not None and engine.pending:
                        with contextlib.suppress(Exception):
                            engine.flush()
                    session.close()

                await self._loop.run_in_executor(executor, teardown)
            executor.shutdown(wait=True)
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.gauge("repro.net.serving").set(0.0)

    # -- addressing --------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolves ``serving.port = 0`` to the actual
        ephemeral port)."""
        if self._server is None:
            raise ServingError("NetServer is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._scfg.host

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- engine-thread plumbing --------------------------------------------
    async def _on_engine(self, fn, *args):
        return await self._loop.run_in_executor(self._executor, fn, *args)

    def _flush_hook(self, _flushed: int) -> None:
        # Scheduler thread -> loop thread: wake long-pollers.
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._jobs.signal_completed)

    # -- connection handling -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self._max_body_bytes
                    )
                except HttpError as exc:
                    writer.write(
                        json_response(
                            exc.status,
                            {"error": exc.message},
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                status, payload = await self._dispatch(request)
                writer.write(
                    json_response(
                        status, payload, keep_alive=request.keep_alive
                    )
                )
                await writer.drain()
                if not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: Request) -> Tuple[int, Any]:
        """Route one request; exceptions become JSON error payloads."""
        self._requests += 1
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.net.requests").inc()
        tenant: Optional[str] = None
        try:
            if request.path == "/healthz":
                self._require_method(request, "GET")
                return await self._healthz()
            if request.path == "/metrics":
                self._require_method(request, "GET")
                return await self._metrics()
            if request.path == "/v1/query" or request.path.startswith(
                "/v1/jobs/"
            ):
                tenant = self._auth.authenticate(request.headers)
                if tenant is None:
                    return 401, {
                        "error": "missing or unknown API key (send "
                        "'Authorization: Bearer <key>' or 'X-API-Key')"
                    }
                self._auth.count(tenant, "requests")
                if request.path == "/v1/query":
                    self._require_method(request, "POST")
                    return await self._submit(tenant, request)
                self._require_method(request, "GET")
                return await self._job_status(
                    tenant, request, request.path[len("/v1/jobs/") :]
                )
            return 404, {"error": f"no route {request.path!r}"}
        except HttpError as exc:
            self._count_error(tenant)
            return exc.status, {"error": exc.message}
        except BasisNotFoundError as exc:
            self._count_error(tenant)
            return 404, {"error": str(exc)}
        except (ShapeError, ServingError, ConfigurationError) as exc:
            self._count_error(tenant)
            return 400, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 - the server must answer
            self._count_error(tenant)
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    @staticmethod
    def _require_method(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(
                405, f"{request.path} only accepts {method}"
            )

    def _count_error(self, tenant: Optional[str]) -> None:
        self._errors += 1
        if tenant is not None:
            self._auth.count(tenant, "errors")
        st = _obs.state()
        if st is not None and st.registry is not None:
            st.registry.counter("repro.net.errors").inc()

    # -- endpoints ---------------------------------------------------------
    async def _submit(self, tenant: str, request: Request) -> Tuple[int, Any]:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "request body must be a JSON object")
        basis = body.get("basis")
        if not isinstance(basis, str) or not basis:
            raise HttpError(400, "'basis' must be a non-empty string")
        kind = body.get("kind", "project")
        if not isinstance(kind, str):
            raise HttpError(400, "'kind' must be a string")
        version = body.get("version")
        if version is not None and not isinstance(version, int):
            raise HttpError(400, f"'version' must be an integer, got {version!r}")
        raw = body.get("payload")
        if raw is None:
            raise HttpError(400, "'payload' (nested lists of numbers) is required")
        try:
            payload = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"'payload' is not numeric: {exc}")
        ticket = await self._on_engine(
            self._engine.submit, kind, basis, payload, version
        )
        job = self._jobs.create(tenant, ticket)
        self._auth.count(tenant, "queries")
        # The submit may have answered already (result-cache hit) or
        # tripped the size watermark and flushed the whole queue.
        self._jobs.signal_completed()
        if ticket.done:
            return 200, self._job_payload(job)
        return 202, self._job_payload(job)

    async def _job_status(
        self, tenant: str, request: Request, job_id: str
    ) -> Tuple[int, Any]:
        if not job_id or "/" in job_id:
            raise HttpError(404, f"no route {request.path!r}")
        job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant:
            # Tenant isolation: another tenant's job id answers exactly
            # like a nonexistent one.
            return 404, {"error": f"no job {job_id!r}"}
        wait = request.query_float("wait")
        if wait and not job.ticket.done:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    job.event.wait(), min(wait, MAX_WAIT_S)
                )
        return 200, self._job_payload(job)

    def _job_payload(self, job) -> dict:
        ticket = job.ticket
        payload = {
            "job": job.id,
            "status": "done" if ticket.done else "pending",
            "kind": ticket.kind,
            "basis": ticket.basis,
            "version": ticket.version,
        }
        if ticket.done:
            value = ticket.result()
            payload["result"] = (
                value.tolist() if isinstance(value, np.ndarray) else value
            )
            payload["degraded"] = ticket.degraded
            payload["cached"] = ticket.cached
        return payload

    async def _metrics(self) -> Tuple[int, Any]:
        engine_stats = await self._on_engine(self._engine.stats)
        scheduler = self._scheduler
        return 200, {
            "registry": _obs.current_registry().snapshot(),
            "engine": engine_stats,
            "scheduler": scheduler.stats() if scheduler is not None else {},
            "tenants": self._auth.snapshot(),
            "jobs": self._jobs.stats(),
            "server": {"requests": self._requests, "errors": self._errors},
        }

    async def _healthz(self) -> Tuple[int, Any]:
        def probe() -> Tuple[list, Dict[str, str], bool]:
            from ..health.daemon import communicator_world

            world, _ = communicator_world(self._session.comm)
            failed: list = []
            states: Dict[str, str] = {}
            if world is not None:
                failed = sorted(world.failed_ranks())
                monitor = getattr(world, "health", None)
                if monitor is not None:
                    states = {
                        str(rank): state
                        for rank, state in monitor.observe().items()
                    }
            return failed, states, bool(self._engine.shard_group_down)

        failed, states, shard_down = await self._on_engine(probe)
        unhealthy = bool(failed) or shard_down or any(
            state in ("suspect", "dead") for state in states.values()
        )
        payload = {
            "status": "degraded" if unhealthy else "ok",
            "ranks": states,
            "failed_ranks": failed,
            "shard_group_down": shard_down,
            "pending": self._jobs.stats()["pending"],
        }
        return (503 if unhealthy else 200), payload


class ServerHandle:
    """A running :class:`NetServer` on a background thread — what tests,
    benchmarks and examples drive.  Context-manageable; :meth:`stop` is
    idempotent."""

    def __init__(self, thread, loop, server, stop_event, failure) -> None:
        self._thread = thread
        self._loop = loop
        self.server = server
        self._stop_event = stop_event
        self._failure = failure
        self.url = server.url

    def stop(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        thread, self._thread = self._thread, None
        if not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        thread.join(timeout=timeout)
        if thread.is_alive():  # pragma: no cover - diagnostics only
            raise ServingError("repro.net server thread did not stop")
        if self._failure:
            raise self._failure[0]

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def start_in_thread(
    store: Any,
    config: Optional[RunConfig] = None,
    *,
    session: Optional[Session] = None,
    startup_timeout_s: float = 60.0,
) -> ServerHandle:
    """Start a :class:`NetServer` on a daemon thread and return its
    handle once the listener is bound (so ``handle.url`` is usable
    immediately; combine with ``serving.port = 0`` for tests)."""
    ready = threading.Event()
    state: Dict[str, Any] = {}
    failure: list = []

    def runner() -> None:
        async def main() -> None:
            server = NetServer(store, config, session=session)
            await server.start()
            stop_event = asyncio.Event()
            state.update(
                loop=asyncio.get_running_loop(),
                server=server,
                stop_event=stop_event,
            )
            ready.set()
            try:
                await stop_event.wait()
            finally:
                await server.stop()

        try:
            asyncio.run(main())
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            failure.append(exc)
        finally:
            ready.set()

    thread = threading.Thread(
        target=runner, name="repro-net-server", daemon=True
    )
    thread.start()
    if not ready.wait(startup_timeout_s):
        raise ServingError(
            f"repro.net server did not start within {startup_timeout_s:g}s"
        )
    if failure:
        thread.join(timeout=5.0)
        raise failure[0]
    return ServerHandle(
        thread, state["loop"], state["server"], state["stop_event"], failure
    )


def serve_forever(
    store: Any,
    config: Optional[RunConfig] = None,
    *,
    announce=print,
) -> None:
    """Blocking serve loop — what ``repro serve`` runs.  Announces the
    bound address once listening; returns cleanly on Ctrl-C."""

    async def main() -> None:
        server = NetServer(store, config)
        await server.start()
        announce(f"repro.net serving on {server.url}")
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        announce("repro.net shutting down")
