"""Spectral Proper Orthogonal Decomposition (Towne, Schmidt & Colonius 2018).

The paper's §2 motivates SPOD as one of the SVD-based analyses its core
enables (the authors' companion package PySPOD, ref. [21], implements it at
scale).  This module provides the standard Welch-blocked batch SPOD:

1. split the snapshot record into ``n_blocks`` overlapping windowed blocks
   of ``n_per_block`` snapshots;
2. DFT each block in time, collecting for every frequency ``f_k`` the
   matrix ``Q_k`` whose columns are the block realisations of that
   frequency;
3. the SPOD modes at ``f_k`` are the left singular vectors of
   ``Q_k / sqrt(n_blocks)`` and the modal energies are the squared
   singular values — the eigendecomposition of the cross-spectral density
   matrix, computed via the method of snapshots (same algebra APMOS
   distributes).

For real input the spectrum is one-sided (non-negative frequencies) with
the conventional doubling of the interior bins' energy.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, ShapeError

__all__ = ["SPODResult", "spod"]


@dataclasses.dataclass(frozen=True)
class SPODResult:
    """SPOD spectrum and modes.

    Attributes
    ----------
    frequencies:
        ``(n_freq,)`` one-sided frequencies (cycles per unit time).
    energies:
        ``(n_freq, n_modes)`` modal energies per frequency, descending
        across the mode axis.
    modes:
        ``(n_freq, M, n_modes)`` complex SPOD modes (orthonormal per
        frequency).
    n_blocks:
        Number of Welch blocks used.
    """

    frequencies: np.ndarray
    energies: np.ndarray
    modes: np.ndarray
    n_blocks: int

    @property
    def n_freq(self) -> int:
        return int(self.frequencies.shape[0])

    @property
    def n_modes(self) -> int:
        return int(self.energies.shape[1])

    def total_energy_spectrum(self) -> np.ndarray:
        """Per-frequency total retained energy (sum over modes)."""
        return self.energies.sum(axis=1)

    def peak_frequency(self) -> float:
        """Frequency bin with the largest leading-mode energy (the mean
        bin at f=0 is excluded — it holds the temporal mean, not a
        fluctuation)."""
        lead = self.energies[:, 0].copy()
        lead[0] = -np.inf
        return float(self.frequencies[int(np.argmax(lead))])

    def modes_at(self, frequency: float) -> np.ndarray:
        """Modes of the frequency bin nearest to ``frequency``."""
        idx = int(np.argmin(np.abs(self.frequencies - frequency)))
        return self.modes[idx]


def _hamming(n: int) -> np.ndarray:
    return 0.54 - 0.46 * np.cos(2.0 * np.pi * np.arange(n) / (n - 1))


def spod(
    snapshots: np.ndarray,
    dt: float = 1.0,
    n_per_block: int = 64,
    overlap: float = 0.5,
    n_modes: Optional[int] = None,
    window: str = "hamming",
    subtract_mean: bool = True,
) -> SPODResult:
    """Batch Welch SPOD of a uniformly sampled snapshot record.

    Parameters
    ----------
    snapshots:
        ``(M, N)`` real snapshot matrix.
    dt:
        Sampling interval.
    n_per_block:
        Snapshots per Welch block (the DFT length).
    overlap:
        Fractional overlap between consecutive blocks in ``[0, 1)``.
    n_modes:
        Retained SPOD modes per frequency (default: all = n_blocks).
    window:
        ``"hamming"`` (default) or ``"boxcar"``.
    subtract_mean:
        Remove the long-time mean before blocking (standard practice).
    """
    q = np.asarray(snapshots, dtype=float)
    if q.ndim != 2:
        raise ShapeError("snapshots must be 2-D (dofs x time)")
    m, n = q.shape
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    if not (2 <= n_per_block <= n):
        raise ConfigurationError(
            f"n_per_block must lie in [2, {n}], got {n_per_block}"
        )
    if not (0.0 <= overlap < 1.0):
        raise ConfigurationError(f"overlap must lie in [0, 1), got {overlap}")

    if window == "hamming":
        w = _hamming(n_per_block)
    elif window == "boxcar":
        w = np.ones(n_per_block)
    else:
        raise ConfigurationError(
            f"unknown window {window!r} (use 'hamming'|'boxcar')"
        )

    if subtract_mean:
        q = q - q.mean(axis=1, keepdims=True)

    step = max(int(round(n_per_block * (1.0 - overlap))), 1)
    starts = list(range(0, n - n_per_block + 1, step))
    n_blocks = len(starts)
    if n_blocks < 1:
        raise ConfigurationError("record too short for a single block")

    # window energy normalisation (Welch convention)
    win_norm = np.sqrt(np.sum(w**2) / n_per_block)
    scale = 1.0 / (win_norm * n_per_block)

    n_freq = n_per_block // 2 + 1
    frequencies = np.fft.rfftfreq(n_per_block, d=dt)

    # (n_freq, M, n_blocks): per-frequency realisation matrices
    q_hat = np.empty((n_freq, m, n_blocks), dtype=complex)
    for b, start in enumerate(starts):
        block = q[:, start : start + n_per_block] * w[np.newaxis, :]
        spectrum = np.fft.rfft(block, axis=1) * scale
        # one-sided energy doubling for the interior bins
        if n_per_block % 2 == 0:
            spectrum[:, 1:-1] *= np.sqrt(2.0)
        else:
            spectrum[:, 1:] *= np.sqrt(2.0)
        q_hat[:, :, b] = spectrum.T

    keep = n_blocks if n_modes is None else min(n_modes, n_blocks)
    if n_modes is not None and n_modes <= 0:
        raise ConfigurationError(f"n_modes must be positive, got {n_modes}")

    energies = np.zeros((n_freq, keep))
    modes = np.zeros((n_freq, m, keep), dtype=complex)
    for k in range(n_freq):
        u, s, _ = np.linalg.svd(
            q_hat[k] / np.sqrt(n_blocks), full_matrices=False
        )
        take = min(keep, s.shape[0])
        energies[k, :take] = s[:take] ** 2
        modes[k, :, :take] = u[:, :take]

    return SPODResult(
        frequencies=frequencies,
        energies=energies,
        modes=modes,
        n_blocks=n_blocks,
    )
