"""Low-rank snapshot compression (paper §2: "particularly useful for data
compression, in the context of e.g. compressive sensing").

A rank-``r`` SVD stores ``r (M + N + 1)`` numbers instead of ``M N`` — for
the tall-skinny matrices the library targets that is a factor of roughly
``N / r``.  This module wraps the policy choices around that fact:

* :func:`compress` — truncate by explicit rank *or* by retained-energy
  target (``energy=0.999`` picks the smallest rank capturing 99.9% of the
  spectrum energy), dense or randomized;
* :class:`CompressedSnapshots` — the compact representation, with exact
  accounting (:attr:`compression_ratio`, :attr:`nbytes`), reconstruction,
  and a single-file ``.npz`` round trip.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Optional, Union

import numpy as np

from ..exceptions import ConfigurationError, DataFormatError, ShapeError
from ..utils.linalg import economy_svd, truncate_svd
from ..utils.rng import RngLike
from ..core.randomized import randomized_svd
from .reconstruction import rank_for_energy

__all__ = ["CompressedSnapshots", "compress"]

PathLike = Union[str, pathlib.Path]


@dataclasses.dataclass(frozen=True)
class CompressedSnapshots:
    """Rank-``r`` factorized representation of an ``(M, N)`` snapshot matrix.

    Stored as ``modes (M, r)``, ``singular_values (r,)``, ``right (r, N)``
    (the rows are ``V^T``), plus the original shape for accounting.
    """

    modes: np.ndarray
    singular_values: np.ndarray
    right: np.ndarray
    original_shape: tuple

    def __post_init__(self) -> None:
        m, n = self.original_shape
        r = self.singular_values.shape[0]
        if self.modes.shape != (m, r) or self.right.shape != (r, n):
            raise ShapeError(
                f"inconsistent compressed factors: modes {self.modes.shape}, "
                f"right {self.right.shape}, rank {r}, original {(m, n)}"
            )

    @property
    def rank(self) -> int:
        return int(self.singular_values.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes of the compressed representation."""
        return int(
            self.modes.nbytes + self.singular_values.nbytes + self.right.nbytes
        )

    @property
    def original_nbytes(self) -> int:
        m, n = self.original_shape
        return int(m * n * self.modes.dtype.itemsize)

    @property
    def compression_ratio(self) -> float:
        """``original bytes / compressed bytes`` (> 1 means smaller)."""
        return self.original_nbytes / self.nbytes

    def decompress(self) -> np.ndarray:
        """Materialise the rank-``r`` approximation of the original matrix."""
        return (self.modes * self.singular_values[np.newaxis, :]) @ self.right

    def relative_error(self, original: np.ndarray) -> float:
        """Frobenius error of the approximation against ``original``."""
        original = np.asarray(original)
        denom = float(np.linalg.norm(original))
        if denom == 0.0:
            return 0.0
        return float(np.linalg.norm(original - self.decompress()) / denom)

    # -- persistence ---------------------------------------------------------
    def save(self, path: PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(".npz")
        np.savez_compressed(
            path,
            kind=np.asarray("compressed-snapshots-v1"),
            modes=self.modes,
            singular_values=self.singular_values,
            right=self.right,
            original_shape=np.asarray(self.original_shape),
        )
        return path

    @classmethod
    def load(cls, path: PathLike) -> "CompressedSnapshots":
        path = pathlib.Path(path)
        try:
            with np.load(path, allow_pickle=False) as data:
                if "kind" not in data or str(data["kind"]) != "compressed-snapshots-v1":
                    raise DataFormatError(
                        f"{path}: not a compressed-snapshots archive"
                    )
                return cls(
                    modes=np.array(data["modes"]),
                    singular_values=np.array(data["singular_values"]),
                    right=np.array(data["right"]),
                    original_shape=tuple(int(x) for x in data["original_shape"]),
                )
        except (OSError, ValueError, KeyError) as exc:
            raise DataFormatError(f"{path}: unreadable archive: {exc}") from exc


def compress(
    data: np.ndarray,
    rank: Optional[int] = None,
    energy: Optional[float] = None,
    low_rank: bool = False,
    oversampling: int = 10,
    power_iters: int = 1,
    rng: RngLike = None,
) -> CompressedSnapshots:
    """Compress a snapshot matrix by SVD truncation.

    Exactly one of ``rank`` / ``energy`` must be given.  ``energy`` picks
    the smallest rank whose cumulative spectrum energy reaches the target
    (requires the dense spectrum, so it implies a dense SVD); ``rank`` may
    be paired with ``low_rank=True`` to use the randomized kernel.
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ShapeError("data must be 2-D (dofs x snapshots)")
    if (rank is None) == (energy is None):
        raise ConfigurationError(
            "specify exactly one of rank= or energy="
        )

    if energy is not None:
        if not (0.0 < energy <= 1.0):
            raise ConfigurationError(
                f"energy target must lie in (0, 1], got {energy}"
            )
        u, s, vt = economy_svd(data)
        r = rank_for_energy(s, energy)
        u, s, vt = truncate_svd(u, s, vt, r)
    else:
        if rank <= 0:
            raise ConfigurationError(f"rank must be positive, got {rank}")
        if low_rank:
            u, s, vt = randomized_svd(
                data,
                rank,
                oversampling=oversampling,
                power_iters=power_iters,
                rng=rng,
            )
        else:
            u, s, vt = economy_svd(data)
            u, s, vt = truncate_svd(u, s, vt, rank)

    return CompressedSnapshots(
        modes=u,
        singular_values=s,
        right=vt,
        original_shape=tuple(data.shape),
    )
