"""Low-rank reconstruction and energy analysis (paper section 2: data
compression / reduced-order representation)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..exceptions import ShapeError

__all__ = [
    "project_coefficients",
    "reconstruct",
    "reconstruction_error_curve",
    "cumulative_energy",
    "rank_for_energy",
]


def project_coefficients(modes: np.ndarray, data: np.ndarray) -> np.ndarray:
    """Galerkin projection ``modes^T data`` — temporal coefficients of the
    snapshots in the mode basis (modes assumed orthonormal)."""
    modes = np.asarray(modes)
    data = np.asarray(data)
    if modes.ndim != 2 or data.ndim != 2:
        raise ShapeError("modes and data must be 2-D")
    if modes.shape[0] != data.shape[0]:
        raise ShapeError(
            f"modes have {modes.shape[0]} rows, data has {data.shape[0]}"
        )
    return modes.T @ data


def reconstruct(modes: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
    """Lift coefficients back to physical space: ``modes @ coefficients``."""
    modes = np.asarray(modes)
    coefficients = np.asarray(coefficients)
    if modes.shape[1] != coefficients.shape[0]:
        raise ShapeError(
            f"got {modes.shape[1]} modes but {coefficients.shape[0]} "
            "coefficient rows"
        )
    return modes @ coefficients


def reconstruction_error_curve(
    data: np.ndarray, modes: np.ndarray, max_rank: Optional[int] = None
) -> np.ndarray:
    """Relative Frobenius reconstruction error as a function of rank.

    ``curve[r-1] = ||A - U_r U_r^T A||_F / ||A||_F`` for ``r = 1..max_rank``.
    Monotonically non-increasing in ``r`` (tests assert this invariant).
    """
    data = np.asarray(data, dtype=float)
    modes = np.asarray(modes, dtype=float)
    if modes.shape[0] != data.shape[0]:
        raise ShapeError(
            f"modes have {modes.shape[0]} rows, data has {data.shape[0]}"
        )
    k = modes.shape[1] if max_rank is None else min(max_rank, modes.shape[1])
    if k <= 0:
        raise ShapeError(f"max_rank must be positive, got {max_rank}")
    denom = float(np.linalg.norm(data))
    if denom == 0.0:
        return np.zeros(k)
    coeffs = modes[:, :k].T @ data  # (k, N), computed once
    total_sq = denom**2
    # ||A - U_r U_r^T A||_F^2 = ||A||_F^2 - sum_{j<=r} ||coeffs_j||^2
    # (orthonormal modes), so the whole curve costs one projection.
    captured = np.cumsum(np.sum(coeffs**2, axis=1))
    residual_sq = np.clip(total_sq - captured, 0.0, None)
    return np.sqrt(residual_sq) / denom


def cumulative_energy(singular_values: np.ndarray) -> np.ndarray:
    """Cumulative energy fractions ``sum_{j<=r} sigma_j^2 / sum_j sigma_j^2``."""
    s = np.asarray(singular_values, dtype=float)
    if s.ndim != 1:
        raise ShapeError("singular_values must be 1-D")
    energies = s**2
    total = float(np.sum(energies))
    if total == 0.0:
        return np.zeros_like(energies)
    return np.cumsum(energies) / total


def rank_for_energy(singular_values: np.ndarray, target: float) -> int:
    """Smallest rank capturing at least ``target`` of the energy.

    ``target`` in ``(0, 1]``; returns ``len(singular_values)`` when even the
    full set falls short (possible only through round-off).
    """
    if not (0.0 < target <= 1.0):
        raise ShapeError(f"target must lie in (0, 1], got {target}")
    cum = cumulative_energy(singular_values)
    hits = np.nonzero(cum >= target - 1e-15)[0]
    return int(hits[0]) + 1 if hits.size else int(cum.shape[0])
