"""Proper Orthogonal Decomposition (paper section 2).

POD is the paper's motivating application: the POD modes of a snapshot
matrix are exactly its left singular vectors, and the modal energies are the
squared singular values.  Two classical computational routes are provided:

* :func:`pod` — direct (economy) SVD of the snapshot matrix;
* :func:`pod_method_of_snapshots` — eigendecomposition of the ``N x N``
  temporal correlation matrix ``A^T A`` (Sirovich), the route APMOS
  parallelises; cheaper when ``M >> N``.

Both agree to round-off on full-rank data, which the tests assert.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..exceptions import ShapeError
from ..utils.linalg import economy_svd

__all__ = ["PODResult", "pod", "pod_method_of_snapshots"]


@dataclasses.dataclass(frozen=True)
class PODResult:
    """POD modes, singular values and temporal coefficients.

    Attributes
    ----------
    modes:
        ``(M, k)`` spatial modes (orthonormal columns).
    singular_values:
        ``(k,)`` singular values, descending.
    coefficients:
        ``(k, N)`` temporal coefficients such that
        ``A ≈ modes @ coefficients`` (coefficients absorb the singular
        values: ``coefficients = diag(s) @ V^T``).
    mean:
        ``(M,)`` temporal mean removed before the decomposition
        (zeros when ``subtract_mean=False``).
    """

    modes: np.ndarray
    singular_values: np.ndarray
    coefficients: np.ndarray
    mean: np.ndarray

    @property
    def energies(self) -> np.ndarray:
        """Modal energies ``sigma_j^2``."""
        return self.singular_values**2

    @property
    def energy_fractions(self) -> np.ndarray:
        """Energy fraction captured by each retained mode.

        Fractions are relative to the energy of the *retained* modes; on
        untruncated data this equals the classical definition.
        """
        total = float(np.sum(self.energies))
        if total == 0.0:
            return np.zeros_like(self.singular_values)
        return self.energies / total

    def reconstruct(self, n_modes: Optional[int] = None) -> np.ndarray:
        """Rank-``n_modes`` reconstruction of the snapshot matrix
        (mean added back)."""
        k = self.modes.shape[1] if n_modes is None else n_modes
        if not (0 < k <= self.modes.shape[1]):
            raise ShapeError(
                f"n_modes must lie in (0, {self.modes.shape[1]}], got {k}"
            )
        return self.modes[:, :k] @ self.coefficients[:k, :] + self.mean[:, None]


def _prepare(data: np.ndarray, subtract_mean: bool):
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ShapeError(f"snapshot matrix must be 2-D, got ndim={data.ndim}")
    if subtract_mean:
        mean = data.mean(axis=1)
        return data - mean[:, None], mean
    return data, np.zeros(data.shape[0])


def pod(
    data: np.ndarray,
    n_modes: Optional[int] = None,
    subtract_mean: bool = True,
) -> PODResult:
    """POD via the direct economy SVD of the snapshot matrix."""
    fluct, mean = _prepare(data, subtract_mean)
    u, s, vt = economy_svd(fluct)
    k = s.shape[0] if n_modes is None else min(n_modes, s.shape[0])
    if n_modes is not None and n_modes <= 0:
        raise ShapeError(f"n_modes must be positive, got {n_modes}")
    return PODResult(
        modes=u[:, :k],
        singular_values=s[:k],
        coefficients=s[:k, None] * vt[:k, :],
        mean=mean,
    )


def pod_method_of_snapshots(
    data: np.ndarray,
    n_modes: Optional[int] = None,
    subtract_mean: bool = True,
) -> PODResult:
    """POD via the temporal correlation matrix (method of snapshots).

    Solves the ``N x N`` symmetric eigenproblem ``(A^T A) v = sigma^2 v``
    and recovers the spatial modes by ``u = A v / sigma`` — the same
    algebra APMOS distributes.  Eigenvalues clipped at zero guard against
    round-off negatives; modes with numerically zero energy are dropped.
    """
    fluct, mean = _prepare(data, subtract_mean)
    gram = fluct.T @ fluct
    evals, evecs = np.linalg.eigh(gram)
    order = np.argsort(evals)[::-1]
    evals = np.clip(evals[order], 0.0, None)
    evecs = evecs[:, order]
    s = np.sqrt(evals)
    # The Gram-matrix route squares the conditioning: eigenvalue round-off
    # is O(eps ||A||^2), so singular values below ~sqrt(eps) * s[0] are
    # numerical noise, not data.
    mos_floor = 10.0 * float(np.finfo(float).eps) ** 0.5
    tol = s[0] * mos_floor if s.size and s[0] > 0 else 0.0
    keep = int(np.sum(s > tol))
    keep = max(keep, 1) if s.size else 0
    if n_modes is not None:
        if n_modes <= 0:
            raise ShapeError(f"n_modes must be positive, got {n_modes}")
        keep = min(keep, n_modes)
    s = s[:keep]
    v = evecs[:, :keep]
    modes = (fluct @ v) / s[np.newaxis, :]
    return PODResult(
        modes=modes,
        singular_values=s,
        coefficients=s[:, None] * v.T,
        mean=mean,
    )
