"""Application-layer analyses built on the SVD core (paper section 2)."""

from .coherent import CoherentStructureReport, extract_coherent_structures
from .compression import CompressedSnapshots, compress
from .dmd import DMDResult, dmd
from .distributed import (
    distributed_inner_products,
    distributed_norm,
    distributed_pod,
    distributed_project,
    distributed_reconstruction_error,
)
from .pod import PODResult, pod, pod_method_of_snapshots
from .spod import SPODResult, spod
from .reconstruction import (
    cumulative_energy,
    project_coefficients,
    rank_for_energy,
    reconstruct,
    reconstruction_error_curve,
)

__all__ = [
    "SPODResult",
    "spod",
    "CompressedSnapshots",
    "compress",
    "distributed_inner_products",
    "distributed_norm",
    "distributed_pod",
    "distributed_project",
    "distributed_reconstruction_error",
    "DMDResult",
    "dmd",
    "PODResult",
    "pod",
    "pod_method_of_snapshots",
    "reconstruct",
    "project_coefficients",
    "reconstruction_error_curve",
    "cumulative_energy",
    "rank_for_energy",
    "CoherentStructureReport",
    "extract_coherent_structures",
]
