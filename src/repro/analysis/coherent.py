"""Coherent-structure extraction reports (paper Figure 2 workflow).

Wraps an SVD result into the quantities a domain scientist inspects:
ranked mode shapes, energy content, and — when the data carry ground-truth
generating structures (the synthetic ERA5-like field) — the projection of
each recovered mode onto the known structures, so "did we find the seasonal
mode?" becomes a number instead of an eyeball judgement.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.linalg import economy_qr
from .reconstruction import cumulative_energy

__all__ = ["CoherentStructureReport", "extract_coherent_structures"]


@dataclasses.dataclass(frozen=True)
class CoherentStructureReport:
    """Summary of the coherent structures found in a dataset.

    Attributes
    ----------
    modes:
        ``(M, k)`` mode shapes, energy-ranked.
    singular_values:
        ``(k,)`` singular values.
    energy_fractions:
        Per-mode fraction of retained energy.
    cumulative_energy:
        Running energy capture.
    truth_alignment:
        Optional mapping ``structure name -> per-mode |projection|`` onto a
        known generating structure (unit-normalised); present only when
        ground truth was supplied.
    """

    modes: np.ndarray
    singular_values: np.ndarray
    energy_fractions: np.ndarray
    cumulative_energy: np.ndarray
    truth_alignment: Optional[Dict[str, np.ndarray]] = None

    @property
    def n_modes(self) -> int:
        return self.modes.shape[1]

    def dominant_structure(self, mode: int) -> Optional[Tuple[str, float]]:
        """Best-matching ground-truth structure for one mode
        (``(name, |cos angle|)``), or ``None`` without ground truth."""
        if self.truth_alignment is None:
            return None
        if not (0 <= mode < self.n_modes):
            raise ShapeError(f"mode {mode} outside [0, {self.n_modes})")
        best_name, best_val = None, -1.0
        for name, alignments in self.truth_alignment.items():
            if alignments[mode] > best_val:
                best_name, best_val = name, float(alignments[mode])
        assert best_name is not None
        return best_name, best_val

    def summary_lines(self) -> list:
        """Human-readable per-mode summary (used by the Figure 2 bench)."""
        lines = []
        for j in range(self.n_modes):
            line = (
                f"mode {j + 1}: sigma={self.singular_values[j]:.4e}  "
                f"energy={100 * self.energy_fractions[j]:6.2f}%  "
                f"cumulative={100 * self.cumulative_energy[j]:6.2f}%"
            )
            match = self.dominant_structure(j)
            if match is not None:
                line += f"  best-match={match[0]} (|cos|={match[1]:.3f})"
            lines.append(line)
        return lines


def _subspace_alignment(
    mode: np.ndarray, structure: np.ndarray
) -> float:
    """|cosine| between one mode and a structure *subspace*.

    A travelling wave is coherent as a 2-D (cos, sin) subspace; a single
    pattern is a 1-D subspace.  ``structure`` is ``(M,)`` or ``(M, d)``.
    """
    structure = np.atleast_2d(np.asarray(structure, dtype=float))
    if structure.shape[0] == 1:
        structure = structure.T
    basis, _ = economy_qr(structure)
    mode = mode / np.linalg.norm(mode)
    return float(np.linalg.norm(basis.T @ mode))


def extract_coherent_structures(
    modes: np.ndarray,
    singular_values: np.ndarray,
    ground_truth: Optional[Dict[str, np.ndarray]] = None,
    n_modes: Optional[int] = None,
) -> CoherentStructureReport:
    """Build a :class:`CoherentStructureReport` from an SVD result.

    Parameters
    ----------
    modes, singular_values:
        Output of any of the library's SVD drivers.
    ground_truth:
        Optional ``name -> (M,) or (M, d)`` known generating structures
        (``d > 1`` for quadrature pairs like travelling waves).
    n_modes:
        Restrict the report to the leading modes.
    """
    modes = np.asarray(modes, dtype=float)
    singular_values = np.asarray(singular_values, dtype=float)
    if modes.ndim != 2:
        raise ShapeError("modes must be 2-D")
    if singular_values.ndim != 1:
        raise ShapeError("singular_values must be 1-D")
    k = min(modes.shape[1], singular_values.shape[0])
    if n_modes is not None:
        if n_modes <= 0:
            raise ShapeError(f"n_modes must be positive, got {n_modes}")
        k = min(k, n_modes)
    modes = modes[:, :k]
    singular_values = singular_values[:k]

    energies = singular_values**2
    total = float(np.sum(energies))
    fractions = energies / total if total > 0 else np.zeros_like(energies)

    alignment = None
    if ground_truth is not None:
        alignment = {}
        for name, structure in ground_truth.items():
            structure = np.asarray(structure, dtype=float)
            if structure.shape[0] != modes.shape[0]:
                raise ShapeError(
                    f"ground-truth structure {name!r} has "
                    f"{structure.shape[0]} dofs, modes have {modes.shape[0]}"
                )
            alignment[name] = np.array(
                [
                    _subspace_alignment(modes[:, j], structure)
                    for j in range(k)
                ]
            )

    return CoherentStructureReport(
        modes=modes,
        singular_values=singular_values,
        energy_fractions=fractions,
        cumulative_energy=cumulative_energy(singular_values),
        truth_alignment=alignment,
    )
