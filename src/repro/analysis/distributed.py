"""Distributed analysis helpers for domain-decomposed data.

APMOS gives each rank its slice of the global modes; everything downstream
of the SVD (mean removal, projections, reconstruction errors, energy
accounting) must then also work on row blocks without ever assembling the
global matrix.  These helpers implement those reductions with a single
``allreduce`` each, so the analysis layer scales like the factorization.

All functions are SPMD-collective: every rank of ``comm`` must call them
with its own block, and every rank receives the global result.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..smpi.reduction import SUM
from .pod import PODResult

__all__ = [
    "distributed_mean",
    "distributed_inner_products",
    "distributed_norm",
    "distributed_project",
    "distributed_reconstruction_error",
    "distributed_pod",
]


def _check_block(a: np.ndarray, name: str) -> np.ndarray:
    a = np.asarray(a, dtype=float)
    if a.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got ndim={a.ndim}")
    return a


def distributed_mean(comm, a_local: np.ndarray) -> np.ndarray:
    """Row-wise temporal mean of the *local* block (no communication) —
    provided for symmetry; the temporal mean is row-local under a row
    decomposition, so no reduction is needed."""
    a_local = _check_block(a_local, "a_local")
    return a_local.mean(axis=1)


def distributed_inner_products(
    comm, u_local: np.ndarray, v_local: np.ndarray
) -> np.ndarray:
    """Global Gram block ``U^T V`` of two row-distributed matrices.

    Each rank contributes ``U_i^T V_i``; the sum over ranks is the global
    product (rows partition the contraction index).
    """
    u_local = _check_block(u_local, "u_local")
    v_local = _check_block(v_local, "v_local")
    if u_local.shape[0] != v_local.shape[0]:
        raise ShapeError(
            f"local blocks disagree on rows: {u_local.shape[0]} vs "
            f"{v_local.shape[0]}"
        )
    return comm.allreduce(u_local.T @ v_local, SUM)


def distributed_norm(comm, a_local: np.ndarray) -> float:
    """Global Frobenius norm of a row-distributed matrix."""
    a_local = _check_block(a_local, "a_local")
    total = comm.allreduce(float(np.sum(a_local * a_local)), SUM)
    return float(np.sqrt(total))


def distributed_project(
    comm, modes_local: np.ndarray, a_local: np.ndarray
) -> np.ndarray:
    """Temporal coefficients ``U^T A`` of row-distributed snapshots in a
    row-distributed orthonormal basis (global ``(k, N)``, replicated)."""
    return distributed_inner_products(comm, modes_local, a_local)


def distributed_reconstruction_error(
    comm,
    a_local: np.ndarray,
    modes_local: np.ndarray,
    relative: bool = True,
) -> float:
    """Global error ``||A - U U^T A||_F`` of a rank-distributed projection.

    Uses the Pythagorean identity ``||A - U U^T A||² = ||A||² - ||U^T A||²``
    (valid for globally orthonormal ``U``), so the only traffic is two
    scalar/small-matrix reductions.
    """
    a_local = _check_block(a_local, "a_local")
    modes_local = _check_block(modes_local, "modes_local")
    coeffs = distributed_project(comm, modes_local, a_local)
    total_sq = comm.allreduce(float(np.sum(a_local * a_local)), SUM)
    captured_sq = float(np.sum(coeffs * coeffs))
    residual = float(np.sqrt(max(total_sq - captured_sq, 0.0)))
    if not relative:
        return residual
    return residual / np.sqrt(total_sq) if total_sq > 0 else 0.0


def distributed_pod(
    comm,
    a_local: np.ndarray,
    n_modes: int,
    r1: Optional[int] = None,
    subtract_mean: bool = True,
) -> Tuple[PODResult, np.ndarray]:
    """POD of a row-distributed snapshot matrix via APMOS.

    Returns ``(result, modes_local)``: ``result`` carries the global
    singular values and temporal coefficients (identical on every rank)
    with this rank's *local* mode block also provided separately — the
    ``PODResult.modes`` field holds the local block, matching how the data
    are distributed.
    """
    from ..core.apmos import apmos_svd

    a_local = _check_block(a_local, "a_local")
    if n_modes <= 0:
        raise ShapeError(f"n_modes must be positive, got {n_modes}")
    if subtract_mean:
        mean_local = a_local.mean(axis=1)
        fluct = a_local - mean_local[:, None]
    else:
        mean_local = np.zeros(a_local.shape[0])
        fluct = a_local

    r1_eff = r1 if r1 is not None else max(50, n_modes)
    u_local, s = apmos_svd(comm, fluct, r1=r1_eff, r2=n_modes)
    coeffs = distributed_project(comm, u_local, fluct)
    result = PODResult(
        modes=u_local,
        singular_values=s,
        coefficients=coeffs,
        mean=mean_local,
    )
    return result, u_local
