"""Dynamic Mode Decomposition (exact DMD, Schmid 2010 / Tu et al. 2014).

The paper (§2) places DMD among the "complementary and more recently
developed data-driven analysis methods" built on the SVD; this module
provides it as an application of the library's SVD core, so a user who
extracted snapshots with the streaming pipeline can move on to spectral
analysis without leaving the package.

Given snapshot pairs ``X = [x_0 .. x_{N-2}]``, ``Y = [x_1 .. x_{N-1}]``
sampled every ``dt``, exact DMD fits the best linear propagator
``Y ≈ A X`` through a rank-``r`` SVD of ``X``:

1. ``X = U S V^T`` (dense or randomized, truncated to ``r``);
2. ``Ã = U^T Y V S^{-1}``    (the propagator in POD coordinates);
3. eigendecompose ``Ã W = W Λ``;
4. exact DMD modes ``Φ = Y V S^{-1} W``;
5. amplitudes ``b = Φ⁺ x_0``.

Each eigenvalue ``λ`` maps to a continuous-time exponent
``ω = log(λ)/dt`` whose real part is a growth rate and imaginary part an
angular frequency.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..utils.linalg import economy_svd, truncate_svd
from ..utils.rng import RngLike
from ..core.randomized import randomized_svd

__all__ = ["DMDResult", "dmd"]


@dataclasses.dataclass(frozen=True)
class DMDResult:
    """Exact-DMD factorization of a snapshot sequence.

    Attributes
    ----------
    modes:
        ``(M, r)`` complex DMD modes (not orthogonal in general).
    eigenvalues:
        ``(r,)`` discrete-time eigenvalues ``λ``.
    amplitudes:
        ``(r,)`` complex amplitudes ``b`` fitted to the first snapshot.
    dt:
        Sampling interval of the input snapshots.
    """

    modes: np.ndarray
    eigenvalues: np.ndarray
    amplitudes: np.ndarray
    dt: float

    @property
    def rank(self) -> int:
        return int(self.eigenvalues.shape[0])

    @property
    def continuous_eigenvalues(self) -> np.ndarray:
        """``ω = log(λ)/dt`` — growth rate + i·angular frequency."""
        return np.log(self.eigenvalues.astype(complex)) / self.dt

    @property
    def frequencies(self) -> np.ndarray:
        """Oscillation frequencies in cycles per unit time."""
        return self.continuous_eigenvalues.imag / (2.0 * np.pi)

    @property
    def growth_rates(self) -> np.ndarray:
        """Exponential growth (positive) / decay (negative) rates."""
        return self.continuous_eigenvalues.real

    def predict(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the fitted model ``x(t) = Φ diag(exp(ω t)) b``.

        ``times`` are absolute times with ``t = 0`` at the first snapshot;
        the result is real (imaginary residue discarded after conjugate
        pairs recombine).
        """
        times = np.asarray(times, dtype=float)
        if times.ndim != 1:
            raise ShapeError("times must be a 1-D array")
        dynamics = np.exp(
            np.outer(self.continuous_eigenvalues, times)
        ) * self.amplitudes[:, None]
        return np.real(self.modes @ dynamics)

    def reconstruct(self, n_snapshots: int) -> np.ndarray:
        """Reconstruct the first ``n_snapshots`` at the training cadence."""
        if n_snapshots <= 0:
            raise ShapeError("n_snapshots must be positive")
        return self.predict(np.arange(n_snapshots) * self.dt)

    def dominant_indices(self, n: Optional[int] = None) -> np.ndarray:
        """Mode indices sorted by energy ``|b| * ||Φ_j||``, descending."""
        weight = np.abs(self.amplitudes) * np.linalg.norm(self.modes, axis=0)
        order = np.argsort(weight)[::-1]
        return order if n is None else order[:n]


def dmd(
    snapshots: np.ndarray,
    rank: int,
    dt: float = 1.0,
    low_rank: bool = False,
    oversampling: int = 10,
    power_iters: int = 2,
    rng: RngLike = None,
) -> DMDResult:
    """Exact DMD of a uniformly sampled snapshot sequence.

    Parameters
    ----------
    snapshots:
        ``(M, N)`` matrix, columns ordered in time, ``N >= 2``.
    rank:
        Truncation rank ``r`` of the inner SVD (clipped to ``N - 1``).
    dt:
        Sampling interval.
    low_rank:
        Use the randomized SVD for step 1 (the library's §3.3 kernel).
    oversampling, power_iters, rng:
        Randomized-SVD knobs (ignored when ``low_rank=False``).
    """
    snapshots = np.asarray(snapshots, dtype=float)
    if snapshots.ndim != 2:
        raise ShapeError("snapshots must be 2-D (dofs x time)")
    if snapshots.shape[1] < 2:
        raise ShapeError("DMD needs at least two snapshots")
    if rank <= 0:
        raise ConfigurationError(f"rank must be positive, got {rank}")
    if dt <= 0:
        raise ConfigurationError(f"dt must be positive, got {dt}")

    x = snapshots[:, :-1]
    y = snapshots[:, 1:]

    if low_rank:
        u, s, vt = randomized_svd(
            x, rank, oversampling=oversampling, power_iters=power_iters, rng=rng
        )
    else:
        u, s, vt = economy_svd(x)
        u, s, vt = truncate_svd(u, s, vt, rank)

    # drop numerically zero directions (keep the pseudo-inverse sane)
    tol = s[0] * 1e-12 if s.size and s[0] > 0 else 0.0
    keep = max(int(np.sum(s > tol)), 1)
    u, s, vt = u[:, :keep], s[:keep], vt[:keep, :]

    # propagator in POD coordinates
    v_over_s = vt.T / s[np.newaxis, :]
    atilde = u.T @ (y @ v_over_s)
    eigenvalues, w = np.linalg.eig(atilde)

    # exact DMD modes
    modes = (y @ v_over_s) @ w

    # amplitudes from the first snapshot (least squares)
    amplitudes, *_ = np.linalg.lstsq(modes, snapshots[:, 0], rcond=None)

    return DMDResult(
        modes=modes,
        eigenvalues=eigenvalues,
        amplitudes=amplitudes,
        dt=float(dt),
    )
