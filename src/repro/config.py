"""Configuration objects for the streaming/distributed/randomized SVD.

The paper exposes the following knobs (section 3 and 4.3):

``K``
    Number of retained left singular vectors ("modes").
``ff``
    Forget factor of the streaming (Levy--Lindenbaum) update, in ``(0, 1]``.
    ``ff = 1.0`` makes the streaming result converge to the one-shot SVD of
    all snapshots; smaller values discount older batches.  The paper uses
    ``ff = 0.95``.
``low_rank``
    Whether dense SVDs inside the pipeline are replaced by the randomized
    low-rank SVD of section 3.3.
``r1``
    APMOS truncation of the locally computed right singular vectors before
    the MPI gather (paper default: 50 columns).
``r2``
    APMOS truncation of the global left factor broadcast back to the ranks
    (paper default: 5 columns) — only used by the one-shot APMOS driver; the
    streaming parallel class retains ``K`` columns instead.
``oversampling`` / ``power_iters``
    Standard randomized-range-finder parameters (Halko et al.); the paper's
    listing uses the plain sketch, which corresponds to
    ``oversampling = 0, power_iters = 0``; we default to a modest
    oversampling of 10 which strictly improves accuracy at negligible cost.
``seed``
    Seed for the randomized sketches.  Parallel ranks derive independent
    child streams, so results are reproducible for a fixed rank count.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Optional, Union

from .exceptions import ConfigurationError
from .smpi.mailbox import DEFAULT_TIMEOUT

__all__ = [
    "SVDConfig",
    "SolverConfig",
    "BackendConfig",
    "StreamConfig",
    "ObservabilityConfig",
    "FaultSpec",
    "FaultConfig",
    "HealthConfig",
    "RestartPolicy",
    "RunConfig",
    "ServingConfig",
    "TenantSpec",
    "RESTART_MODES",
    "DEFAULT_FORGET_FACTOR",
    "DEFAULT_R1",
    "DEFAULT_R2",
    "FAULT_KINDS",
    "GATHER_POLICIES",
    "QR_VARIANTS",
    "validate_parallel_options",
]

#: Forget factor used throughout the paper's experiments (section 3.1).
DEFAULT_FORGET_FACTOR = 0.95
#: APMOS local right-vector truncation used in the paper (section 3.2).
DEFAULT_R1 = 50
#: APMOS global left-factor truncation used in the paper (section 3.2).
DEFAULT_R2 = 5

#: Valid mode-gathering policies of :class:`~repro.core.parallel.ParSVDParallel`.
GATHER_POLICIES = ("bcast", "root", "none")
#: Valid distributed-QR variants (paper Listing 4 vs binary-tree TSQR).
QR_VARIANTS = ("gather", "tree")


def validate_parallel_options(
    qr_variant: str,
    gather: str,
    apmos_group_size: Optional[int],
) -> None:
    """Validate :class:`~repro.core.parallel.ParSVDParallel` string/int knobs.

    Raises :class:`~repro.exceptions.ConfigurationError` (never
    ``ShapeError``: these are configuration mistakes, not bad data) so
    callers can discriminate the failure class.
    """
    if qr_variant not in QR_VARIANTS:
        raise ConfigurationError(
            f"qr_variant must be one of {QR_VARIANTS}, got {qr_variant!r}"
        )
    if gather not in GATHER_POLICIES:
        raise ConfigurationError(
            f"gather must be one of {GATHER_POLICIES}, got {gather!r}"
        )
    if apmos_group_size is not None:
        if not isinstance(apmos_group_size, int) or isinstance(
            apmos_group_size, bool
        ):
            raise ConfigurationError(
                f"apmos_group_size must be an int or None, got "
                f"{apmos_group_size!r}"
            )
        if apmos_group_size < 1:
            raise ConfigurationError(
                f"apmos_group_size must be >= 1, got {apmos_group_size}"
            )


@dataclasses.dataclass(frozen=True)
class SVDConfig:
    """Immutable, validated bundle of SVD algorithm parameters.

    Parameters
    ----------
    K:
        Number of modes (truncated left singular vectors) to track.
    ff:
        Streaming forget factor in ``(0, 1]``.
    low_rank:
        Use the randomized low-rank SVD for the inner dense factorizations.
    r1, r2:
        APMOS truncation factors (see module docstring).
    oversampling:
        Extra sketch columns beyond the target rank for the randomized SVD.
    power_iters:
        Number of power iterations of the randomized range finder.
    seed:
        Base seed for randomized sketches; ``None`` draws fresh entropy.

    Examples
    --------
    >>> cfg = SVDConfig(K=10)
    >>> cfg.ff
    0.95
    >>> cfg.replace(ff=1.0).ff
    1.0
    """

    K: int = 10
    ff: float = DEFAULT_FORGET_FACTOR
    low_rank: bool = False
    r1: int = DEFAULT_R1
    r2: int = DEFAULT_R2
    oversampling: int = 10
    power_iters: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.K, (int,)) or isinstance(self.K, bool):
            raise ConfigurationError(f"K must be an int, got {self.K!r}")
        if self.K <= 0:
            raise ConfigurationError(f"K must be positive, got {self.K}")
        if not (0.0 < float(self.ff) <= 1.0):
            raise ConfigurationError(
                f"forget factor ff must lie in (0, 1], got {self.ff}"
            )
        if self.r1 <= 0:
            raise ConfigurationError(f"r1 must be positive, got {self.r1}")
        if self.r2 <= 0:
            raise ConfigurationError(f"r2 must be positive, got {self.r2}")
        if self.oversampling < 0:
            raise ConfigurationError(
                f"oversampling must be nonnegative, got {self.oversampling}"
            )
        if self.power_iters < 0:
            raise ConfigurationError(
                f"power_iters must be nonnegative, got {self.power_iters}"
            )
        if self.seed is not None and self.seed < 0:
            raise ConfigurationError(f"seed must be nonnegative, got {self.seed}")

    def replace(self, **changes: object) -> "SVDConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> dict:
        """Return the configuration as a plain dictionary."""
        return dataclasses.asdict(self)


class _SectionMixin:
    """Shared conveniences of the frozen config dataclasses."""

    def replace(self, **changes: object):
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> dict:
        """Return the configuration as a plain dictionary."""
        return dataclasses.asdict(self)  # type: ignore[call-overload]


def _from_section_dict(cls, section: str, payload: dict):
    """Build a config dataclass from a plain dict, rejecting unknown keys
    with a :class:`~repro.exceptions.ConfigurationError` that names the
    offending key (so ``repro config validate`` failures are actionable).
    Wrong-typed values (e.g. a string where a float belongs) surface as
    the same error class, never a raw ``TypeError``/``ValueError``."""
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"{section!r} section must be a mapping, got {type(payload).__name__}"
        )
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in {section!r} section; "
            f"valid keys: {sorted(known)}"
        )
    try:
        return cls(**payload)
    except ConfigurationError as exc:
        # Field validation errors name the field ("K must be positive")
        # but not where it lives — prefix the section so `repro config
        # validate` failures point at the right part of the file.
        raise ConfigurationError(f"in {section!r} section: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(
            f"invalid value in {section!r} section: {exc}"
        ) from exc


@dataclasses.dataclass(frozen=True)
class SolverConfig(SVDConfig):
    """All knobs of a streaming/distributed SVD run, frozen and validated.

    Extends :class:`SVDConfig` (the paper's algorithm parameters) with the
    parallel driver's run options, so one object fully describes how
    :class:`~repro.core.parallel.ParSVDParallel` factors its stream.

    Parameters
    ----------
    qr_variant:
        Distributed-QR flavour: ``"gather"`` (paper Listing 4, default) or
        ``"tree"`` (binary-reduction TSQR).
    gather:
        Mode-assembly policy for :attr:`~repro.core.parallel.
        ParSVDParallel.modes`: ``"bcast"`` (default), ``"root"`` or
        ``"none"``.
    apmos_group_size:
        Group size of the two-level hierarchical APMOS initialisation, or
        ``None`` (default) for the flat single-level gather.
    workspace:
        Enable the allocation-free streaming fast lane (default ``True``).
    overlap:
        Pipeline streaming updates: each step's collectives stay in
        flight while the next batch is ingested (default ``False``).

    Examples
    --------
    >>> SolverConfig(K=10, ff=1.0, qr_variant="tree").gather
    'bcast'
    """

    qr_variant: str = "gather"
    gather: str = "bcast"
    apmos_group_size: Optional[int] = None
    workspace: bool = True
    overlap: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        validate_parallel_options(
            self.qr_variant, self.gather, self.apmos_group_size
        )
        if not isinstance(self.workspace, bool):
            raise ConfigurationError(
                f"workspace must be a bool, got {self.workspace!r}"
            )
        if not isinstance(self.overlap, bool):
            raise ConfigurationError(
                f"overlap must be a bool, got {self.overlap!r}"
            )

    @classmethod
    def from_svd_config(cls, config: SVDConfig, **options: object) -> "SolverConfig":
        """Lift a plain :class:`SVDConfig` (e.g. from a checkpoint) into a
        :class:`SolverConfig`, with run options as keyword overrides."""
        if isinstance(config, SolverConfig) and not options:
            return config
        base = {
            field.name: getattr(config, field.name)
            for field in dataclasses.fields(config)
        }
        base.update(options)
        return cls(**base)  # type: ignore[arg-type]


@dataclasses.dataclass(frozen=True)
class BackendConfig(_SectionMixin):
    """Which communicator substrate a run executes on, and its knobs.

    Parameters
    ----------
    name:
        Registered backend name — ``"threads"`` (in-process SPMD,
        default), ``"self"`` (zero-overhead single rank) or ``"mpi4py"``
        (real MPI under a launcher); see :data:`repro.smpi.BACKENDS`.
    size:
        Number of ranks.  Must be 1 for ``"self"``; for ``"mpi4py"`` it is
        validated against the launcher's world size.
    timeout:
        Mailbox deadlock timeout in seconds (``"threads"`` backend).
    irecv_buffer_bytes:
        Receive-buffer size preallocated per preposted ``irecv`` on the
        ``"mpi4py"`` adapter (whose pickle-mode ``irecv`` cannot
        probe-size and truncates larger messages).  Raise it when
        preposting receives for large payloads; other backends probe
        exactly and ignore it.
    """

    name: str = "threads"
    size: int = 1
    timeout: float = DEFAULT_TIMEOUT
    irecv_buffer_bytes: int = 1 << 24

    def __post_init__(self) -> None:
        from .smpi.factory import BACKENDS

        if self.name not in BACKENDS:
            raise ConfigurationError(
                f"backend name must be one of {BACKENDS}, got {self.name!r}"
            )
        if not isinstance(self.size, int) or isinstance(self.size, bool):
            raise ConfigurationError(
                f"backend size must be an int, got {self.size!r}"
            )
        if self.size < 1:
            raise ConfigurationError(
                f"backend size must be >= 1, got {self.size}"
            )
        if self.name == "self" and self.size != 1:
            raise ConfigurationError(
                f"the 'self' backend is single-rank by construction; got "
                f"size {self.size} (use 'threads' or 'mpi4py')"
            )
        if (
            not isinstance(self.timeout, (int, float))
            or isinstance(self.timeout, bool)
            or not self.timeout > 0.0
        ):
            raise ConfigurationError(
                f"backend timeout must be a positive number, got {self.timeout!r}"
            )
        if (
            not isinstance(self.irecv_buffer_bytes, int)
            or isinstance(self.irecv_buffer_bytes, bool)
            or self.irecv_buffer_bytes < 1
        ):
            raise ConfigurationError(
                f"irecv_buffer_bytes must be a positive int, got "
                f"{self.irecv_buffer_bytes!r}"
            )


@dataclasses.dataclass(frozen=True)
class StreamConfig(_SectionMixin):
    """How snapshot batches reach the solver.

    Parameters
    ----------
    source:
        Path to an on-disk snapshot container
        (:class:`~repro.data.io.SnapshotDataset`), or ``None`` (default)
        when the caller supplies the data/stream directly to
        :meth:`~repro.api.Session.fit_stream`.
    batch:
        Batch size (columns per streaming update) used when slicing a
        matrix or container into batches; ``None`` when the caller hands
        over an already-batched stream.
    prefetch:
        Background prefetch depth: ``> 0`` wraps the rank-local stream in
        a :class:`~repro.data.streams.PrefetchStream` of that depth so
        batch production overlaps compute; ``0`` (default) disables it.
    """

    source: Optional[str] = None
    batch: Optional[int] = None
    prefetch: int = 0

    def __post_init__(self) -> None:
        if self.source is not None and not isinstance(self.source, str):
            raise ConfigurationError(
                f"stream source must be a path string or None, got "
                f"{self.source!r}"
            )
        if self.batch is not None:
            if not isinstance(self.batch, int) or isinstance(self.batch, bool):
                raise ConfigurationError(
                    f"stream batch must be an int or None, got {self.batch!r}"
                )
            if self.batch < 1:
                raise ConfigurationError(
                    f"stream batch must be >= 1, got {self.batch}"
                )
        if (
            not isinstance(self.prefetch, int)
            or isinstance(self.prefetch, bool)
            or self.prefetch < 0
        ):
            raise ConfigurationError(
                f"stream prefetch depth must be an int >= 0, got "
                f"{self.prefetch!r}"
            )


@dataclasses.dataclass(frozen=True)
class ObservabilityConfig(_SectionMixin):
    """What the run measures about itself (the :mod:`repro.obs` layer).

    Parameters
    ----------
    metrics:
        Record counters/gauges/histograms into the process-global
        :class:`~repro.obs.MetricsRegistry` — per-collective call/byte/
        latency rollups, overlap efficiency, prefetch and serving
        metrics.  Communicators are wrapped in the metrics observer only
        while this is on; the default ``False`` keeps the hot path
        untouched.
    trace:
        Record phase-tagged spans into the process-global
        :class:`~repro.obs.SpanTracer`, exportable as Chrome-trace JSON
        (``Session.dump_trace`` / ``--trace``).
    window_s:
        Rolling window (seconds) for counter rates.
    """

    metrics: bool = False
    trace: bool = False
    window_s: float = 60.0

    def __post_init__(self) -> None:
        if not isinstance(self.metrics, bool):
            raise ConfigurationError(
                f"metrics must be a bool, got {self.metrics!r}"
            )
        if not isinstance(self.trace, bool):
            raise ConfigurationError(
                f"trace must be a bool, got {self.trace!r}"
            )
        if (
            not isinstance(self.window_s, (int, float))
            or isinstance(self.window_s, bool)
            or not self.window_s > 0.0
        ):
            raise ConfigurationError(
                f"window_s must be a positive number, got {self.window_s!r}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any observability is requested."""
        return self.metrics or self.trace


#: Fault kinds the :mod:`repro.faults` injector understands.
FAULT_KINDS = ("delay", "jitter", "drop", "crash")


@dataclasses.dataclass(frozen=True)
class FaultSpec(_SectionMixin):
    """One scheduled fault: what to inject, where, and when.

    A spec matches a communicator operation when the op name matches
    ``op`` (``"*"`` = any), the calling rank matches ``rank`` (``-1`` =
    any rank) and the rank's per-spec match counter has reached ``at``.
    From then on it fires on ``count`` consecutive matching calls
    (``-1`` = every subsequent one; ``crash`` always fires exactly once
    per run).

    Parameters
    ----------
    kind:
        ``"delay"`` (sleep ``delay_s`` before the op), ``"jitter"``
        (sleep a seeded-uniform draw from ``[0, delay_s]`` — the
        slow-rank model), ``"drop"`` (swallow a send: the message is
        never delivered) or ``"crash"`` (raise
        :class:`repro.faults.InjectedCrash` — the rank dies).
    rank:
        World rank the fault applies to, or ``-1`` for every rank.
    op:
        Communicator op name (``"bcast"``, ``"isend"``, ...) or ``"*"``.
    at:
        Zero-based index of the first matching call that fires.
    count:
        Number of firings from ``at`` on (``-1`` = unlimited).
    delay_s:
        Sleep magnitude for ``delay``/``jitter``.
    probability:
        Per-call firing probability in ``(0, 1]``, drawn from the
        deterministic per-rank stream seeded by ``FaultConfig.seed``.
    """

    kind: str = "delay"
    rank: int = -1
    op: str = "*"
    at: int = 0
    count: int = 1
    delay_s: float = 0.0
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not isinstance(self.rank, int) or isinstance(self.rank, bool):
            raise ConfigurationError(
                f"fault rank must be an int, got {self.rank!r}"
            )
        if self.rank < -1:
            raise ConfigurationError(
                f"fault rank must be >= -1 (-1 = any rank), got {self.rank}"
            )
        if not isinstance(self.op, str) or not self.op:
            raise ConfigurationError(
                f"fault op must be an op name or '*', got {self.op!r}"
            )
        if (
            not isinstance(self.at, int)
            or isinstance(self.at, bool)
            or self.at < 0
        ):
            raise ConfigurationError(
                f"fault at must be an int >= 0, got {self.at!r}"
            )
        if (
            not isinstance(self.count, int)
            or isinstance(self.count, bool)
            or (self.count < 1 and self.count != -1)
        ):
            raise ConfigurationError(
                f"fault count must be >= 1 or -1 (unlimited), got {self.count!r}"
            )
        if (
            not isinstance(self.delay_s, (int, float))
            or isinstance(self.delay_s, bool)
            or self.delay_s < 0.0
        ):
            raise ConfigurationError(
                f"fault delay_s must be a number >= 0, got {self.delay_s!r}"
            )
        if self.kind in ("delay", "jitter") and not self.delay_s > 0.0:
            raise ConfigurationError(
                f"a {self.kind!r} fault needs delay_s > 0, got {self.delay_s}"
            )
        if (
            not isinstance(self.probability, (int, float))
            or isinstance(self.probability, bool)
            or not (0.0 < float(self.probability) <= 1.0)
        ):
            raise ConfigurationError(
                f"fault probability must lie in (0, 1], got {self.probability!r}"
            )


@dataclasses.dataclass(frozen=True)
class FaultConfig(_SectionMixin):
    """Deterministic fault-injection plan (the :mod:`repro.faults` layer).

    Disabled by default: with ``enabled=False`` (or an empty schedule)
    communicators are handed out unwrapped and the run is untouched.
    Enabled, every communicator the factories create is wrapped in a
    :class:`repro.faults.FaultyCommunicator` sharing one seeded
    controller, so a schedule replays identically for a fixed
    ``(seed, schedule, rank count)``.

    Parameters
    ----------
    enabled:
        Master switch for injection.
    seed:
        Seed of the per-rank random streams deciding probabilistic
        faults and jitter magnitudes.
    schedule:
        Tuple of :class:`FaultSpec` (plain dicts are coerced, so the
        section round-trips through JSON).
    """

    enabled: bool = False
    seed: int = 0
    schedule: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigurationError(
                f"faults enabled must be a bool, got {self.enabled!r}"
            )
        if (
            not isinstance(self.seed, int)
            or isinstance(self.seed, bool)
            or self.seed < 0
        ):
            raise ConfigurationError(
                f"faults seed must be an int >= 0, got {self.seed!r}"
            )
        if not isinstance(self.schedule, (list, tuple)):
            raise ConfigurationError(
                f"faults schedule must be a sequence of fault specs, got "
                f"{type(self.schedule).__name__}"
            )
        specs = []
        for index, entry in enumerate(self.schedule):
            if isinstance(entry, FaultSpec):
                specs.append(entry)
            elif isinstance(entry, dict):
                specs.append(
                    _from_section_dict(FaultSpec, f"faults.schedule[{index}]", entry)
                )
            else:
                raise ConfigurationError(
                    f"faults.schedule[{index}] must be a FaultSpec or "
                    f"mapping, got {type(entry).__name__}"
                )
        object.__setattr__(self, "schedule", tuple(specs))

    @property
    def active(self) -> bool:
        """Whether injection is actually requested (enabled + nonempty)."""
        return self.enabled and bool(self.schedule)


@dataclasses.dataclass(frozen=True)
class HealthConfig(_SectionMixin):
    """Liveness monitoring of a running SPMD job (the :mod:`repro.health`
    layer).

    Disabled by default: nothing beats, nothing polls, the hot path is
    untouched.  Enabled, every :class:`~repro.api.Session` starts a
    background progress daemon that publishes a monotonic heartbeat on
    this rank's mailbox, advances in-flight overlapped collectives, and
    classifies its peers from their beat ages:

    ``alive``
        beat age ``<= straggler_factor * heartbeat_interval``.
    ``straggler``
        late, but within ``suspect_after`` — the slow-rank signal.
    ``suspect``
        beat age ``> suspect_after`` — serving routes flushes away from
        shard groups containing such ranks.
    ``dead``
        beat age ``> dead_after`` — the monitor drives
        :meth:`~repro.smpi.world.World.fail_rank` proactively, waking
        blocked collectives long before the mailbox ``DeadlockError``
        timeout.

    Parameters
    ----------
    enabled:
        Master switch for heartbeat publication and monitoring.
    heartbeat_interval:
        Target period (seconds) between a rank's liveness beats; also
        the progress daemon's minimum polling period.
    suspect_after:
        Beat age (seconds) past which a peer is classified ``suspect``.
    straggler_factor:
        Multiple of ``heartbeat_interval`` a beat may lag before the
        peer counts as a ``straggler``.
    dead_after:
        Beat age (seconds) past which a peer is declared ``dead`` and
        failed; ``None`` (default) derives ``2 * suspect_after``.
    """

    enabled: bool = False
    heartbeat_interval: float = 0.05
    suspect_after: float = 1.0
    straggler_factor: float = 4.0
    dead_after: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigurationError(
                f"health enabled must be a bool, got {self.enabled!r}"
            )
        for name in ("heartbeat_interval", "suspect_after", "straggler_factor"):
            value = getattr(self, name)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not value > 0.0
            ):
                raise ConfigurationError(
                    f"health {name} must be a positive number, got {value!r}"
                )
        if self.dead_after is not None and (
            not isinstance(self.dead_after, (int, float))
            or isinstance(self.dead_after, bool)
            or not self.dead_after > 0.0
        ):
            raise ConfigurationError(
                f"health dead_after must be a positive number or None, got "
                f"{self.dead_after!r}"
            )
        if (
            self.dead_after is not None
            and self.dead_after < self.suspect_after
        ):
            raise ConfigurationError(
                f"health dead_after ({self.dead_after}) must be >= "
                f"suspect_after ({self.suspect_after})"
            )

    @property
    def effective_dead_after(self) -> float:
        """The death threshold, deriving ``2 * suspect_after`` from
        ``dead_after=None``."""
        if self.dead_after is not None:
            return float(self.dead_after)
        return 2.0 * float(self.suspect_after)


@dataclasses.dataclass(frozen=True)
class TenantSpec(_SectionMixin):
    """One tenant of the network serving frontend (:mod:`repro.net`).

    Parameters
    ----------
    name:
        Tenant identifier — appears in per-tenant request counters
        (``repro.net.tenant.<name>.*``) and the ``/metrics`` snapshot.
    key:
        API key the tenant authenticates with (``Authorization: Bearer
        <key>`` or ``X-API-Key: <key>``).
    """

    name: str = ""
    key: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ConfigurationError(
                f"tenant name must be a non-empty string, got {self.name!r}"
            )
        if not self.name.replace("_", "").replace("-", "").isalnum():
            raise ConfigurationError(
                f"tenant name must be alphanumeric (plus '_'/'-'), got "
                f"{self.name!r}"
            )
        if not isinstance(self.key, str) or not self.key:
            raise ConfigurationError(
                f"tenant {self.name!r} needs a non-empty API key string, "
                f"got {self.key!r}"
            )


@dataclasses.dataclass(frozen=True)
class ServingConfig(_SectionMixin):
    """The network serving frontend (:mod:`repro.net`) and its SLOs.

    Governs ``repro serve``: an asyncio HTTP server whose lifespan owns a
    :class:`~repro.api.Session`-backed :class:`~repro.serving.QueryEngine`
    on a dedicated executor thread.

    Parameters
    ----------
    host, port:
        Bind address of the HTTP listener.  ``port=0`` binds an ephemeral
        port (the server reports the one chosen) — what tests and the
        load bench use.
    flush_deadline_ms:
        The latency SLO of the deadline-driven flush scheduler: a
        pending query is flushed no later than this many milliseconds
        after submission, even when the batch-size watermark
        (``max_batch``) has not been reached.
    max_batch:
        Batch-size watermark — the engine's ``flush_threshold``: this
        many pending queries trigger an immediate flush.
    result_cache_entries:
        Capacity of the keyed result cache (basis name + version +
        payload digest → result); ``0`` disables it.
    tenants:
        Tuple of :class:`TenantSpec` (plain dicts are coerced, so the
        section round-trips through JSON).  Empty (the default) serves
        unauthenticated single-tenant traffic under the ``"anonymous"``
        tenant; non-empty enables per-request API-key auth.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    flush_deadline_ms: float = 25.0
    max_batch: int = 64
    result_cache_entries: int = 256
    tenants: tuple = ()

    def __post_init__(self) -> None:
        if not isinstance(self.host, str) or not self.host:
            raise ConfigurationError(
                f"serving host must be a non-empty string, got {self.host!r}"
            )
        if (
            not isinstance(self.port, int)
            or isinstance(self.port, bool)
            or not (0 <= self.port <= 65535)
        ):
            raise ConfigurationError(
                f"serving port must be an int in [0, 65535], got {self.port!r}"
            )
        if (
            not isinstance(self.flush_deadline_ms, (int, float))
            or isinstance(self.flush_deadline_ms, bool)
            or not self.flush_deadline_ms > 0.0
        ):
            raise ConfigurationError(
                f"serving flush_deadline_ms must be a positive number, got "
                f"{self.flush_deadline_ms!r}"
            )
        if (
            not isinstance(self.max_batch, int)
            or isinstance(self.max_batch, bool)
            or self.max_batch < 1
        ):
            raise ConfigurationError(
                f"serving max_batch must be an int >= 1, got {self.max_batch!r}"
            )
        if (
            not isinstance(self.result_cache_entries, int)
            or isinstance(self.result_cache_entries, bool)
            or self.result_cache_entries < 0
        ):
            raise ConfigurationError(
                f"serving result_cache_entries must be an int >= 0, got "
                f"{self.result_cache_entries!r}"
            )
        if not isinstance(self.tenants, (list, tuple)):
            raise ConfigurationError(
                f"serving tenants must be a sequence of tenant specs, got "
                f"{type(self.tenants).__name__}"
            )
        specs = []
        for index, entry in enumerate(self.tenants):
            if isinstance(entry, TenantSpec):
                specs.append(entry)
            elif isinstance(entry, dict):
                specs.append(
                    _from_section_dict(
                        TenantSpec, f"serving.tenants[{index}]", entry
                    )
                )
            else:
                raise ConfigurationError(
                    f"serving.tenants[{index}] must be a TenantSpec or "
                    f"mapping, got {type(entry).__name__}"
                )
        names = [spec.name for spec in specs]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ConfigurationError(
                f"duplicate serving tenant name(s) {duplicates}"
            )
        keys = [spec.key for spec in specs]
        if len(set(keys)) != len(keys):
            raise ConfigurationError(
                "serving tenant API keys must be unique (a shared key "
                "cannot attribute requests to one tenant)"
            )
        object.__setattr__(self, "tenants", tuple(specs))

    @property
    def auth_enabled(self) -> bool:
        """Whether per-request API-key auth is on (any tenant declared)."""
        return bool(self.tenants)


#: Recovery modes of :class:`RestartPolicy`.
RESTART_MODES = ("restart", "live")


@dataclasses.dataclass(frozen=True)
class RestartPolicy(_SectionMixin):
    """How :meth:`repro.api.Session.run` survives a failed SPMD attempt.

    Parameters
    ----------
    max_restarts:
        Restart budget; attempt ``max_restarts + 1`` runs in total before
        re-raising the last failure.
    backoff_s:
        Sleep before restart ``n`` is ``backoff_s * backoff_factor**(n-1)
        + U[0, jitter_s)`` seconds (exponential backoff, seeded jitter).
    backoff_factor:
        Exponential growth factor (``>= 1``).
    jitter_s:
        Uniform random extra sleep bound (decorrelates herds).
    checkpoint_every:
        Auto-checkpoint period in batches during ``fit_stream`` (gathered
        checkpoints, restartable at any rank count).
    checkpoint_path:
        Directory for the recovery checkpoints; ``None`` uses a private
        temporary directory for the duration of the call.
    shrink:
        Allow elastic shrink: each restart may rebuild the communicator
        with one rank fewer (never below ``min_size``) — the gathered
        checkpoint restarts at any rank count.
    min_size:
        Smallest rank count elastic shrink may fall back to.
    mode:
        ``"restart"`` (default): a failed attempt tears the run down and
        replays the stream from the last gathered checkpoint.
        ``"live"``: the run executes on an elastic in-process session and
        a detected dead rank triggers an in-place shrink —
        the pending pipelined step is aborted, the factors are restored
        from the last in-memory snapshot, the communicator is rebuilt
        one rank smaller, and the stream continues without replay
        (metered as ``repro.recovery.live_rescales``).
    """

    max_restarts: int = 2
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    jitter_s: float = 0.0
    checkpoint_every: int = 1
    checkpoint_path: Optional[str] = None
    shrink: bool = False
    min_size: int = 1
    mode: str = "restart"

    def __post_init__(self) -> None:
        if self.mode not in RESTART_MODES:
            raise ConfigurationError(
                f"restart mode must be one of {RESTART_MODES}, got {self.mode!r}"
            )
        if (
            not isinstance(self.max_restarts, int)
            or isinstance(self.max_restarts, bool)
            or self.max_restarts < 0
        ):
            raise ConfigurationError(
                f"max_restarts must be an int >= 0, got {self.max_restarts!r}"
            )
        for name in ("backoff_s", "jitter_s"):
            value = getattr(self, name)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or value < 0.0
            ):
                raise ConfigurationError(
                    f"{name} must be a number >= 0, got {value!r}"
                )
        if (
            not isinstance(self.backoff_factor, (int, float))
            or isinstance(self.backoff_factor, bool)
            or not self.backoff_factor >= 1.0
        ):
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor!r}"
            )
        if (
            not isinstance(self.checkpoint_every, int)
            or isinstance(self.checkpoint_every, bool)
            or self.checkpoint_every < 1
        ):
            raise ConfigurationError(
                f"checkpoint_every must be an int >= 1, got "
                f"{self.checkpoint_every!r}"
            )
        if self.checkpoint_path is not None and not isinstance(
            self.checkpoint_path, str
        ):
            raise ConfigurationError(
                f"checkpoint_path must be a path string or None, got "
                f"{self.checkpoint_path!r}"
            )
        if not isinstance(self.shrink, bool):
            raise ConfigurationError(
                f"shrink must be a bool, got {self.shrink!r}"
            )
        if (
            not isinstance(self.min_size, int)
            or isinstance(self.min_size, bool)
            or self.min_size < 1
        ):
            raise ConfigurationError(
                f"min_size must be an int >= 1, got {self.min_size!r}"
            )

    def backoff_for(self, restart: int, rng=None) -> float:
        """Sleep (seconds) before the ``restart``-th restart (1-based)."""
        base = self.backoff_s * self.backoff_factor ** max(restart - 1, 0)
        if self.jitter_s > 0.0 and rng is not None:
            base += float(rng.uniform(0.0, self.jitter_s))
        return base


@dataclasses.dataclass(frozen=True)
class RunConfig(_SectionMixin):
    """The complete, typed description of one SVD run.

    Composes the orthogonal sections — *what* to solve
    (:class:`SolverConfig`), *where* to run it (:class:`BackendConfig`),
    *how* batches arrive (:class:`StreamConfig`) and *what the run
    measures about itself* (:class:`ObservabilityConfig`) — into the
    single value every driver entry point (:class:`~repro.api.Session`, the CLI,
    examples, benchmarks) programs against.  Round-trips losslessly
    through :meth:`to_dict`/:meth:`from_dict` and JSON
    (:meth:`to_json`/:meth:`from_json`/:meth:`save`/:meth:`load`), and is
    embedded into checkpoints so :meth:`repro.api.Session.resume` can
    restore solver *and* backend settings.

    Examples
    --------
    >>> cfg = RunConfig(solver=SolverConfig(K=10, ff=1.0))
    >>> RunConfig.from_json(cfg.to_json()) == cfg
    True
    """

    solver: SolverConfig = dataclasses.field(default_factory=SolverConfig)
    backend: BackendConfig = dataclasses.field(default_factory=BackendConfig)
    stream: StreamConfig = dataclasses.field(default_factory=StreamConfig)
    obs: ObservabilityConfig = dataclasses.field(
        default_factory=ObservabilityConfig
    )
    faults: FaultConfig = dataclasses.field(default_factory=FaultConfig)
    health: HealthConfig = dataclasses.field(default_factory=HealthConfig)
    serving: ServingConfig = dataclasses.field(default_factory=ServingConfig)

    def __post_init__(self) -> None:
        if not isinstance(self.solver, SolverConfig):
            raise ConfigurationError(
                f"solver must be a SolverConfig, got {type(self.solver).__name__}"
            )
        if not isinstance(self.backend, BackendConfig):
            raise ConfigurationError(
                f"backend must be a BackendConfig, got {type(self.backend).__name__}"
            )
        if not isinstance(self.stream, StreamConfig):
            raise ConfigurationError(
                f"stream must be a StreamConfig, got {type(self.stream).__name__}"
            )
        if not isinstance(self.obs, ObservabilityConfig):
            raise ConfigurationError(
                f"obs must be an ObservabilityConfig, got {type(self.obs).__name__}"
            )
        if not isinstance(self.faults, FaultConfig):
            raise ConfigurationError(
                f"faults must be a FaultConfig, got {type(self.faults).__name__}"
            )
        if not isinstance(self.health, HealthConfig):
            raise ConfigurationError(
                f"health must be a HealthConfig, got {type(self.health).__name__}"
            )
        if not isinstance(self.serving, ServingConfig):
            raise ConfigurationError(
                f"serving must be a ServingConfig, got "
                f"{type(self.serving).__name__}"
            )

    # -- dict / JSON round-trip -------------------------------------------
    def to_dict(self) -> dict:
        """Nested plain-dict form (JSON-serialisable)."""
        payload = {
            "solver": dataclasses.asdict(self.solver),
            "backend": dataclasses.asdict(self.backend),
            "stream": dataclasses.asdict(self.stream),
            "obs": dataclasses.asdict(self.obs),
            "faults": dataclasses.asdict(self.faults),
            "health": dataclasses.asdict(self.health),
            "serving": dataclasses.asdict(self.serving),
        }
        # JSON round-trip: the spec tuples (of dicts, after asdict)
        # serialise as lists; from_dict coerces them back.
        payload["faults"]["schedule"] = list(payload["faults"]["schedule"])
        payload["serving"]["tenants"] = list(payload["serving"]["tenants"])
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "RunConfig":
        """Inverse of :meth:`to_dict`; missing sections/keys take their
        defaults, unknown ones raise :class:`~repro.exceptions.
        ConfigurationError`."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"run config must be a mapping, got {type(payload).__name__}"
            )
        unknown = sorted(
            set(payload)
            - {
                "solver",
                "backend",
                "stream",
                "obs",
                "faults",
                "health",
                "serving",
            }
        )
        if unknown:
            raise ConfigurationError(
                f"unknown section(s) {unknown} in run config; valid "
                f"sections: ['backend', 'faults', 'health', 'obs', "
                f"'serving', 'solver', 'stream']"
            )
        return cls(
            solver=_from_section_dict(
                SolverConfig, "solver", payload.get("solver", {})
            ),
            backend=_from_section_dict(
                BackendConfig, "backend", payload.get("backend", {})
            ),
            stream=_from_section_dict(
                StreamConfig, "stream", payload.get("stream", {})
            ),
            obs=_from_section_dict(
                ObservabilityConfig, "obs", payload.get("obs", {})
            ),
            faults=_from_section_dict(
                FaultConfig, "faults", payload.get("faults", {})
            ),
            health=_from_section_dict(
                HealthConfig, "health", payload.get("health", {})
            ),
            serving=_from_section_dict(
                ServingConfig, "serving", payload.get("serving", {})
            ),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunConfig":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"run config is not valid JSON: {exc}") from exc
        return cls.from_dict(payload)

    def save(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Write the JSON form to ``path``; returns the path written."""
        path = pathlib.Path(path)
        path.write_text(self.to_json(indent=2) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "RunConfig":
        """Read a JSON run config from disk (see :meth:`save`)."""
        path = pathlib.Path(path)
        try:
            text = path.read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read run config {path}: {exc}") from exc
        return cls.from_json(text)
