"""Configuration objects for the streaming/distributed/randomized SVD.

The paper exposes the following knobs (section 3 and 4.3):

``K``
    Number of retained left singular vectors ("modes").
``ff``
    Forget factor of the streaming (Levy--Lindenbaum) update, in ``(0, 1]``.
    ``ff = 1.0`` makes the streaming result converge to the one-shot SVD of
    all snapshots; smaller values discount older batches.  The paper uses
    ``ff = 0.95``.
``low_rank``
    Whether dense SVDs inside the pipeline are replaced by the randomized
    low-rank SVD of section 3.3.
``r1``
    APMOS truncation of the locally computed right singular vectors before
    the MPI gather (paper default: 50 columns).
``r2``
    APMOS truncation of the global left factor broadcast back to the ranks
    (paper default: 5 columns) — only used by the one-shot APMOS driver; the
    streaming parallel class retains ``K`` columns instead.
``oversampling`` / ``power_iters``
    Standard randomized-range-finder parameters (Halko et al.); the paper's
    listing uses the plain sketch, which corresponds to
    ``oversampling = 0, power_iters = 0``; we default to a modest
    oversampling of 10 which strictly improves accuracy at negligible cost.
``seed``
    Seed for the randomized sketches.  Parallel ranks derive independent
    child streams, so results are reproducible for a fixed rank count.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .exceptions import ConfigurationError

__all__ = [
    "SVDConfig",
    "DEFAULT_FORGET_FACTOR",
    "DEFAULT_R1",
    "DEFAULT_R2",
    "GATHER_POLICIES",
    "QR_VARIANTS",
    "validate_parallel_options",
]

#: Forget factor used throughout the paper's experiments (section 3.1).
DEFAULT_FORGET_FACTOR = 0.95
#: APMOS local right-vector truncation used in the paper (section 3.2).
DEFAULT_R1 = 50
#: APMOS global left-factor truncation used in the paper (section 3.2).
DEFAULT_R2 = 5

#: Valid mode-gathering policies of :class:`~repro.core.parallel.ParSVDParallel`.
GATHER_POLICIES = ("bcast", "root", "none")
#: Valid distributed-QR variants (paper Listing 4 vs binary-tree TSQR).
QR_VARIANTS = ("gather", "tree")


def validate_parallel_options(
    qr_variant: str,
    gather: str,
    apmos_group_size: Optional[int],
) -> None:
    """Validate :class:`~repro.core.parallel.ParSVDParallel` string/int knobs.

    Raises :class:`~repro.exceptions.ConfigurationError` (never
    ``ShapeError``: these are configuration mistakes, not bad data) so
    callers can discriminate the failure class.
    """
    if qr_variant not in QR_VARIANTS:
        raise ConfigurationError(
            f"qr_variant must be one of {QR_VARIANTS}, got {qr_variant!r}"
        )
    if gather not in GATHER_POLICIES:
        raise ConfigurationError(
            f"gather must be one of {GATHER_POLICIES}, got {gather!r}"
        )
    if apmos_group_size is not None:
        if not isinstance(apmos_group_size, int) or isinstance(
            apmos_group_size, bool
        ):
            raise ConfigurationError(
                f"apmos_group_size must be an int or None, got "
                f"{apmos_group_size!r}"
            )
        if apmos_group_size < 1:
            raise ConfigurationError(
                f"apmos_group_size must be >= 1, got {apmos_group_size}"
            )


@dataclasses.dataclass(frozen=True)
class SVDConfig:
    """Immutable, validated bundle of SVD algorithm parameters.

    Parameters
    ----------
    K:
        Number of modes (truncated left singular vectors) to track.
    ff:
        Streaming forget factor in ``(0, 1]``.
    low_rank:
        Use the randomized low-rank SVD for the inner dense factorizations.
    r1, r2:
        APMOS truncation factors (see module docstring).
    oversampling:
        Extra sketch columns beyond the target rank for the randomized SVD.
    power_iters:
        Number of power iterations of the randomized range finder.
    seed:
        Base seed for randomized sketches; ``None`` draws fresh entropy.

    Examples
    --------
    >>> cfg = SVDConfig(K=10)
    >>> cfg.ff
    0.95
    >>> cfg.replace(ff=1.0).ff
    1.0
    """

    K: int = 10
    ff: float = DEFAULT_FORGET_FACTOR
    low_rank: bool = False
    r1: int = DEFAULT_R1
    r2: int = DEFAULT_R2
    oversampling: int = 10
    power_iters: int = 0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.K, (int,)) or isinstance(self.K, bool):
            raise ConfigurationError(f"K must be an int, got {self.K!r}")
        if self.K <= 0:
            raise ConfigurationError(f"K must be positive, got {self.K}")
        if not (0.0 < float(self.ff) <= 1.0):
            raise ConfigurationError(
                f"forget factor ff must lie in (0, 1], got {self.ff}"
            )
        if self.r1 <= 0:
            raise ConfigurationError(f"r1 must be positive, got {self.r1}")
        if self.r2 <= 0:
            raise ConfigurationError(f"r2 must be positive, got {self.r2}")
        if self.oversampling < 0:
            raise ConfigurationError(
                f"oversampling must be nonnegative, got {self.oversampling}"
            )
        if self.power_iters < 0:
            raise ConfigurationError(
                f"power_iters must be nonnegative, got {self.power_iters}"
            )
        if self.seed is not None and self.seed < 0:
            raise ConfigurationError(f"seed must be nonnegative, got {self.seed}")

    def replace(self, **changes: object) -> "SVDConfig":
        """Return a copy of this config with the given fields replaced."""
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]

    def as_dict(self) -> dict:
        """Return the configuration as a plain dictionary."""
        return dataclasses.asdict(self)
