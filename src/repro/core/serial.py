"""``ParSVDSerial`` — the serial streaming SVD (paper Listing 1).

Single-process reference implementation of Algorithm 1.  It is both a usable
tool for moderate problem sizes and the ground truth that the parallel class
is validated against (Figure 1a/1b).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DataFormatError
from ..utils.rng import resolve_rng
from .base import ParSVDBase
from .checkpoint import read_checkpoint, write_checkpoint
from .streaming import StreamingState, incorporate_batch, initialize_streaming

__all__ = ["ParSVDSerial"]


class ParSVDSerial(ParSVDBase):
    """Streaming truncated SVD of a snapshot matrix on one process.

    Examples
    --------
    >>> import numpy as np
    >>> rng = np.random.default_rng(0)
    >>> data = rng.standard_normal((200, 40))
    >>> svd = ParSVDSerial(K=5, ff=1.0)
    >>> svd = svd.initialize(data[:, :10])
    >>> for j in range(10, 40, 10):
    ...     svd = svd.incorporate_data(data[:, j:j+10])
    >>> svd.modes.shape
    (200, 5)
    >>> svd.singular_values.shape
    (5,)
    """

    def __init__(self, K=None, ff=None, low_rank=None, config=None, **extra):
        super().__init__(K=K, ff=ff, low_rank=low_rank, config=config, **extra)
        self._rng = resolve_rng(self._config.seed)
        self._state = None

    def initialize(self, A: np.ndarray) -> "ParSVDSerial":
        """Factor the first batch (Algorithm 1, steps I1-I2)."""
        A = self._validate_first_batch(A)
        cfg = self._config
        self._state = initialize_streaming(
            A,
            cfg.K,
            low_rank=cfg.low_rank,
            oversampling=cfg.oversampling,
            power_iters=cfg.power_iters,
            rng=self._rng,
        )
        self._publish()
        return self

    def incorporate_data(self, A: np.ndarray) -> "ParSVDSerial":
        """Ingest one more batch (Algorithm 1, while-loop body)."""
        A = self._validate_next_batch(A)
        cfg = self._config
        assert self._state is not None
        self._state = incorporate_batch(
            self._state,
            A,
            cfg.K,
            cfg.ff,
            low_rank=cfg.low_rank,
            oversampling=cfg.oversampling,
            power_iters=cfg.power_iters,
            rng=self._rng,
        )
        self._publish()
        return self

    def _publish(self) -> None:
        assert self._state is not None
        self._modes = self._state.modes
        self._singular_values = self._state.singular_values
        self._iteration = self._state.batches
        self._n_seen = self._state.n_seen

    # -- checkpoint / restart --------------------------------------------
    def save_checkpoint(self, path) -> "str":
        """Persist the full resumable state (see :mod:`repro.core.checkpoint`)."""
        self._require_initialized()
        out = write_checkpoint(
            path,
            self._config,
            self.modes,
            self.singular_values,
            self._iteration,
            self._n_seen,
            kind="serial",
        )
        return str(out)

    @classmethod
    def from_checkpoint(cls, path) -> "ParSVDSerial":
        """Rebuild a serial streaming SVD from a checkpoint; ingestion can
        continue with :meth:`incorporate_data` immediately."""
        state = read_checkpoint(path)
        if state["kind"] != "serial":
            raise DataFormatError(
                f"{path}: checkpoint kind {state['kind']!r} is not 'serial'"
            )
        svd = cls(config=state["config"])
        svd._state = StreamingState(
            modes=state["modes"],
            singular_values=state["singular_values"],
            n_seen=state["n_seen"],
            batches=state["iteration"],
        )
        svd._n_dof = state["modes"].shape[0]
        svd._publish()
        return svd
