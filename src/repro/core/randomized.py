"""Randomized linear algebra (paper section 3.3).

The paper accelerates every dense SVD in the pipeline with the classic
randomized low-rank factorization (Halko, Martinsson & Tropp):

1. draw a Gaussian sketch ``Omega`` with ``r`` (+ oversampling) columns;
2. form a range basis ``Q = orth(A @ Omega)`` (optionally refined by power
   iterations for slowly decaying spectra);
3. factor the small projected matrix ``B = Q^T A`` densely;
4. lift back: ``U = Q @ U_B``.

The paper's listing calls the helper ``low_rank_svd(wglobal, K)`` and uses a
plain sketch (no oversampling, no power iterations).  We expose both knobs —
``oversampling=0, power_iters=0`` reproduces the paper's variant exactly,
and the ablation bench A3 sweeps them.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..utils.linalg import economy_svd, qr_positive, truncate_svd
from ..utils.rng import RngLike, resolve_rng

__all__ = [
    "gaussian_sketch",
    "rademacher_sketch",
    "sparse_sign_sketch",
    "make_sketch",
    "randomized_range_finder",
    "randomized_svd",
    "low_rank_svd",
]


def _check_sketch_dims(ncols: int, rank: int) -> None:
    if ncols <= 0 or rank <= 0:
        raise ConfigurationError(
            f"sketch dimensions must be positive, got ({ncols}, {rank})"
        )


def gaussian_sketch(
    ncols: int, rank: int, rng: RngLike = None
) -> np.ndarray:
    """Draw an ``ncols x rank`` standard-Gaussian test matrix.

    The paper: "Q is generally randomly sampled from a zero-mean
    unit-variance Gaussian distribution every time a randomized SVD is
    required."
    """
    _check_sketch_dims(ncols, rank)
    return resolve_rng(rng).standard_normal((ncols, rank))


def rademacher_sketch(
    ncols: int, rank: int, rng: RngLike = None
) -> np.ndarray:
    """±1 (Rademacher) test matrix — same subspace-embedding guarantees as
    Gaussian at lower generation cost and exact unit variance."""
    _check_sketch_dims(ncols, rank)
    gen = resolve_rng(rng)
    return gen.integers(0, 2, size=(ncols, rank)).astype(float) * 2.0 - 1.0


def sparse_sign_sketch(
    ncols: int, rank: int, density: float = 0.25, rng: RngLike = None
) -> np.ndarray:
    """Sparse-sign test matrix: each entry is 0 with probability
    ``1 - density`` and ``±1/sqrt(density)`` otherwise.

    The classic cheap sketch for very large ``A`` (fewer multiplies per
    sketch column); variance is normalised so ``E[omega omega^T] = I``.
    """
    _check_sketch_dims(ncols, rank)
    if not (0.0 < density <= 1.0):
        raise ConfigurationError(
            f"density must lie in (0, 1], got {density}"
        )
    gen = resolve_rng(rng)
    mask = gen.random((ncols, rank)) < density
    signs = gen.integers(0, 2, size=(ncols, rank)).astype(float) * 2.0 - 1.0
    return np.where(mask, signs / np.sqrt(density), 0.0)


#: Sketch registry used by :func:`make_sketch`.
_SKETCHES = {
    "gaussian": gaussian_sketch,
    "rademacher": rademacher_sketch,
    "sparse": sparse_sign_sketch,
}


def make_sketch(
    kind: str, ncols: int, rank: int, rng: RngLike = None
) -> np.ndarray:
    """Dispatch to a named sketch family (``gaussian|rademacher|sparse``)."""
    try:
        factory = _SKETCHES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown sketch {kind!r}; choose from {sorted(_SKETCHES)}"
        ) from None
    return factory(ncols, rank, rng=rng)


def randomized_range_finder(
    a: np.ndarray,
    rank: int,
    oversampling: int = 10,
    power_iters: int = 0,
    rng: RngLike = None,
    sketch: str = "gaussian",
) -> np.ndarray:
    """Orthonormal basis ``Q`` approximating the range of ``a``.

    Parameters
    ----------
    a:
        ``(m, n)`` matrix whose leading left subspace is sought.
    rank:
        Target rank ``r``.
    oversampling:
        Extra sketch columns ``p``; the basis has ``min(r + p, min(m, n))``
        columns.  Oversampling tightens the expected error bound from
        ``O(sqrt(r))`` to ``O(sqrt(r/p))`` multiples of ``sigma_{r+1}``.
    power_iters:
        Number ``q`` of subspace (power) iterations ``(A A^T)^q A Omega``,
        each re-orthonormalised for numerical stability.  Sharpens the basis
        when the singular spectrum decays slowly.
    rng:
        Seed/generator for the Gaussian sketch.

    Returns
    -------
    Q:
        ``(m, l)`` with orthonormal columns, ``l = min(rank + oversampling,
        min(m, n))``.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"a must be 2-D, got ndim={a.ndim}")
    if rank <= 0:
        raise ConfigurationError(f"rank must be positive, got {rank}")
    if oversampling < 0 or power_iters < 0:
        raise ConfigurationError(
            "oversampling and power_iters must be nonnegative"
        )
    m, n = a.shape
    sketch_cols = min(rank + oversampling, min(m, n))
    omega = make_sketch(sketch, n, sketch_cols, rng)
    y = a @ omega
    q, _ = qr_positive(y)
    for _ in range(power_iters):
        # Re-orthonormalise between multiplications: the naive power scheme
        # loses all small singular directions to round-off.
        z, _ = qr_positive(a.T @ q)
        q, _ = qr_positive(a @ z)
    return q


def randomized_svd(
    a: np.ndarray,
    rank: int,
    oversampling: int = 10,
    power_iters: int = 0,
    rng: RngLike = None,
    sketch: str = "gaussian",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Randomized truncated SVD ``a ≈ U @ diag(s) @ Vt`` with ``rank`` modes.

    Returns exactly ``min(rank, min(a.shape))`` triplets, truncated after
    the dense SVD of the projected matrix.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"a must be 2-D, got ndim={a.ndim}")
    q = randomized_range_finder(
        a,
        rank,
        oversampling=oversampling,
        power_iters=power_iters,
        rng=rng,
        sketch=sketch,
    )
    b = q.T @ a
    ub, s, vt = economy_svd(b)
    u = q @ ub
    return truncate_svd(u, s, vt, rank)


def low_rank_svd(
    a: np.ndarray,
    rank: int,
    oversampling: int = 0,
    power_iters: int = 0,
    rng: RngLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The paper's ``low_rank_svd`` helper: left vectors + singular values.

    The listings call this in two places (the APMOS global SVD and the
    Levy--Lindenbaum small SVD) and only consume ``(U_r, s_r)``; the right
    vectors are discarded.  Defaults reproduce the paper's plain sketch.
    """
    u, s, _vt = randomized_svd(
        a, rank, oversampling=oversampling, power_iters=power_iters, rng=rng
    )
    return u, s


def relative_spectral_error(
    a: np.ndarray,
    u: np.ndarray,
    s: np.ndarray,
    vt: Optional[np.ndarray] = None,
) -> float:
    """``||A - U S V^T||_F / ||A||_F`` of a truncated factorization.

    When ``vt`` is omitted it is recovered by projection (``V^T = S^+ U^T A``),
    which matches how the streaming algorithm — which never stores right
    vectors — must be assessed.
    """
    a = np.asarray(a)
    denom = float(np.linalg.norm(a))
    if denom == 0.0:
        return 0.0
    if vt is None:
        with np.errstate(divide="ignore"):
            inv = np.where(s > 0, 1.0 / s, 0.0)
        vt = (inv[:, None] * (u.T @ a))
    approx = (u * s[np.newaxis, :]) @ vt
    return float(np.linalg.norm(a - approx) / denom)
