"""Core algorithms: streaming, distributed and randomized SVD."""

from .apmos import (
    apmos_svd,
    apmos_svd_two_level,
    generate_right_vectors,
    stack_gathered,
)
from .base import ParSVDBase
from .metrics import (
    ModeComparison,
    compare_modes,
    mode_error_curve,
    mode_errors,
    spectrum_relative_error,
)
from .parallel import ParSVDParallel
from .randomized import (
    gaussian_sketch,
    low_rank_svd,
    randomized_range_finder,
    randomized_svd,
    relative_spectral_error,
)
from .serial import ParSVDSerial
from .streaming import StreamingState, incorporate_batch, initialize_streaming
from .tsqr import tsqr_gather, tsqr_tree

__all__ = [
    "ParSVDBase",
    "ParSVDSerial",
    "ParSVDParallel",
    "apmos_svd",
    "apmos_svd_two_level",
    "generate_right_vectors",
    "stack_gathered",
    "tsqr_gather",
    "tsqr_tree",
    "gaussian_sketch",
    "randomized_range_finder",
    "randomized_svd",
    "low_rank_svd",
    "relative_spectral_error",
    "StreamingState",
    "initialize_streaming",
    "incorporate_batch",
    "ModeComparison",
    "compare_modes",
    "mode_errors",
    "mode_error_curve",
    "spectrum_relative_error",
]
