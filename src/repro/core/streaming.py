"""Functional Levy--Lindenbaum streaming-SVD kernels (paper Algorithm 1).

These pure functions implement the two phases of the streaming SVD and are
shared by :class:`~repro.core.serial.ParSVDSerial` (which applies them to the
whole matrix) and :class:`~repro.core.parallel.ParSVDParallel` (which swaps
the dense QR/SVD for their distributed counterparts but reuses the same
update structure).

State after ``i`` batches is the pair ``(U_i, D_i)`` — the ``K`` leading
left singular vectors and singular values of the (forget-factor-weighted)
data seen so far.  The update for a new batch ``A_i`` is:

1. ``[ff * U_{i-1} diag(D_{i-1}) | A_i] = U' D'``          (QR)
2. ``D' = Utilde Dtilde Vtilde^T``                          (small SVD)
3. keep the ``K`` leading columns:  ``U_i = U' Utilde[:, :K]``,
   ``D_i = Dtilde[:K]``.

With ``ff = 1`` the recursion is *exact*: after any number of batches
``(U_i, D_i)`` equals the truncated SVD of the full concatenated matrix
(up to truncation error), which the property tests assert.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError, ShapeError
from ..utils.linalg import as_floating, economy_svd, qr_positive, truncate_svd
from ..utils.rng import RngLike
from .randomized import randomized_svd

__all__ = ["StreamingState", "initialize_streaming", "incorporate_batch"]


@dataclasses.dataclass(frozen=True)
class StreamingState:
    """Truncated SVD state carried between streaming updates.

    Attributes
    ----------
    modes:
        ``(M, k)`` left singular vectors (``k <= K``; fewer than ``K``
        only when fewer than ``K`` snapshots have been seen).
    singular_values:
        ``(k,)`` singular values, descending.
    n_seen:
        Total number of snapshots ingested so far.
    batches:
        Number of batches ingested (``i`` in the paper's notation).
    """

    modes: np.ndarray
    singular_values: np.ndarray
    n_seen: int
    batches: int

    @property
    def rank(self) -> int:
        return int(self.singular_values.shape[0])


def _validate_batch(a: np.ndarray, name: str = "A") -> np.ndarray:
    a = as_floating(a, name)
    if a.ndim != 2:
        raise ShapeError(f"{name} must be 2-D (dofs x snapshots), got ndim={a.ndim}")
    if a.shape[1] == 0:
        raise ShapeError(f"{name} must contain at least one snapshot")
    return a


def _inner_svd(
    matrix: np.ndarray,
    k: int,
    low_rank: bool,
    oversampling: int,
    power_iters: int,
    rng: RngLike,
) -> Tuple[np.ndarray, np.ndarray]:
    """Dense or randomized SVD of the small inner matrix; returns (U, s)."""
    if low_rank:
        u, s, _ = randomized_svd(
            matrix, k, oversampling=oversampling, power_iters=power_iters, rng=rng
        )
        return u, s
    u, s, _ = economy_svd(matrix)
    return u, s


def initialize_streaming(
    a0: np.ndarray,
    k: int,
    low_rank: bool = False,
    oversampling: int = 10,
    power_iters: int = 0,
    rng: RngLike = None,
) -> StreamingState:
    """Phase I of Algorithm 1: factor the first batch.

    ``A_0 = Q R``; ``R = U' D_0 V_0^T``; ``U_0 = Q U'`` truncated to ``K``.
    The QR-first formulation keeps the SVD on the small ``B x B`` factor
    ``R`` instead of the tall ``M x B`` batch.
    """
    a0 = _validate_batch(a0, "A0")
    q, r = qr_positive(a0)
    u_inner, s = _inner_svd(r, k, low_rank, oversampling, power_iters, rng)
    modes = q @ u_inner
    modes, s, _ = truncate_svd(modes, s, None, k)
    return StreamingState(
        modes=modes,
        singular_values=s,
        n_seen=a0.shape[1],
        batches=1,
    )


def incorporate_batch(
    state: StreamingState,
    a: np.ndarray,
    k: int,
    ff: float,
    low_rank: bool = False,
    oversampling: int = 10,
    power_iters: int = 0,
    rng: RngLike = None,
) -> StreamingState:
    """One streaming update (the ``while`` body of Algorithm 1).

    Parameters mirror :func:`initialize_streaming`; ``ff`` is the forget
    factor weighting the previous state's contribution.
    """
    a = _validate_batch(a)
    if a.shape[0] != state.modes.shape[0]:
        raise ShapeError(
            f"batch has {a.shape[0]} rows but the state was initialised "
            f"with {state.modes.shape[0]} degrees of freedom"
        )
    if not (0.0 < ff <= 1.0):
        # A bad forget factor is a configuration mistake, not bad data.
        raise ConfigurationError(
            f"forget factor must lie in (0, 1], got {ff}"
        )

    # Column-concatenate the forgotten previous factorization with new data:
    # m_ap = [ff * U_{i-1} D_{i-1} | A_i]
    weighted = state.modes * (ff * state.singular_values)[np.newaxis, :]
    m_ap = np.concatenate((weighted, a), axis=1)

    # Step 1: QR of the concatenation.
    u_dash, d_dash = qr_positive(m_ap)

    # Step 2: SVD of the small factor.
    u_tilde, d_tilde = _inner_svd(
        d_dash, k, low_rank, oversampling, power_iters, rng
    )

    # Steps 3-5: truncate to K and lift back through Q.
    keep = min(k, d_tilde.shape[0])
    modes = u_dash @ u_tilde[:, :keep]
    return StreamingState(
        modes=modes,
        singular_values=d_tilde[:keep],
        n_seen=state.n_seen + a.shape[1],
        batches=state.batches + 1,
    )
