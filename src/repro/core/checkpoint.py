"""Checkpoint/restart for streaming SVD state.

The paper targets in-situ analysis alongside long-running simulations; in
that setting the analysis must survive job restarts.  ``save_results``
(:class:`~repro.core.base.ParSVDBase`) stores only the *outputs*; a
checkpoint stores the full *resumable state* — modes, values, counters and
the configuration — so ingestion can continue exactly where it stopped:

>>> svd.save_checkpoint("state.ckpt.npz")         # before the job ends
>>> svd = ParSVDSerial.from_checkpoint("state.ckpt.npz")
>>> svd.incorporate_data(next_batch)              # stream continues

For the parallel class each rank checkpoints its own shard
(``<stem>.rank<i>.npz``); on restart the rank count must match, which is
validated.  Alternatively ``save_checkpoint(..., gathered=True)`` writes one
single file at rank 0 holding the *assembled* global modes
(``kind="gathered"``); such a checkpoint can be restarted at **any** rank
count — each restarting rank re-partitions the global rows with the
canonical :func:`~repro.utils.partition.block_partition`.

Format: a single ``.npz`` with a format-version field; loading a newer or
unknown version fails loudly rather than mis-restoring.
"""

from __future__ import annotations

import pathlib
import warnings
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from ..config import SVDConfig

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..config import RunConfig
from ..exceptions import DataFormatError, NotInitializedError

__all__ = [
    "CHECKPOINT_VERSION",
    "CHECKPOINT_KINDS",
    "normalize_checkpoint_path",
    "write_checkpoint",
    "read_checkpoint",
]

CHECKPOINT_VERSION = 1

#: Valid values of the ``kind`` identity field.  ``"serial"`` and
#: ``"parallel"`` hold one (rank's) state; ``"gathered"`` holds the fully
#: assembled global modes in a single rank-0 file.
CHECKPOINT_KINDS = ("serial", "parallel", "gathered")

PathLike = Union[str, pathlib.Path]

_CONFIG_FIELDS = ("K", "ff", "low_rank", "r1", "r2", "oversampling", "power_iters")


def normalize_checkpoint_path(path: PathLike) -> pathlib.Path:
    """The on-disk path a checkpoint lands at for a user-supplied ``path``.

    Appends ``.npz`` rather than substituting it: ``"results.v2"`` must
    become ``"results.v2.npz"``, not clobber the stem into
    ``"results.npz"``.  Exposed so collective writers (only rank 0 touches
    the file) can agree on the destination without writing.
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def write_checkpoint(
    path: PathLike,
    config: SVDConfig,
    modes: np.ndarray,
    singular_values: np.ndarray,
    iteration: int,
    n_seen: int,
    kind: str,
    rank: int = 0,
    nranks: int = 1,
    qr_variant: str = "gather",
    gather: str = "bcast",
    apmos_group_size: Optional[int] = None,
    run_config: Optional["RunConfig"] = None,
) -> pathlib.Path:
    """Serialise one (rank's) resumable streaming state.

    ``qr_variant``/``gather``/``apmos_group_size`` record the parallel
    driver's run options so a restart continues with the saved
    configuration; the serial driver leaves them at their defaults.

    ``run_config`` (when given, e.g. by :class:`~repro.api.Session`)
    embeds the full typed :class:`~repro.config.RunConfig` as a JSON
    payload, so a resume can restore solver *and* backend settings —
    including knobs the flat fields don't carry (``workspace``,
    ``overlap``, backend name/size, stream batching).
    """
    if modes is None or singular_values is None:
        raise NotInitializedError("cannot checkpoint an uninitialised SVD")
    if kind not in CHECKPOINT_KINDS:
        raise DataFormatError(
            f"checkpoint kind must be one of {CHECKPOINT_KINDS}, got {kind!r}"
        )
    path = normalize_checkpoint_path(path)
    extra = {}
    if run_config is not None:
        extra["run_config_json"] = np.asarray(run_config.to_json())
    np.savez(
        path,
        **extra,
        format_version=np.asarray(CHECKPOINT_VERSION),
        kind=np.asarray(kind),
        modes=modes,
        singular_values=singular_values,
        iteration=np.asarray(int(iteration)),
        n_seen=np.asarray(int(n_seen)),
        rank=np.asarray(int(rank)),
        nranks=np.asarray(int(nranks)),
        config_K=np.asarray(config.K),
        config_ff=np.asarray(config.ff),
        config_low_rank=np.asarray(config.low_rank),
        config_r1=np.asarray(config.r1),
        config_r2=np.asarray(config.r2),
        config_oversampling=np.asarray(config.oversampling),
        config_power_iters=np.asarray(config.power_iters),
        config_seed=np.asarray(-1 if config.seed is None else config.seed),
        par_qr_variant=np.asarray(qr_variant),
        par_gather=np.asarray(gather),
        par_apmos_group_size=np.asarray(
            -1 if apmos_group_size is None else int(apmos_group_size)
        ),
    )
    return path


def read_checkpoint(path: PathLike, load_arrays: bool = True) -> dict:
    """Load and validate a checkpoint written by :func:`write_checkpoint`.

    Returns a dict with ``config`` (an :class:`SVDConfig`), the state
    arrays, counters, the ``kind``/``rank``/``nranks`` identity fields,
    and ``run_config`` — the embedded :class:`~repro.config.RunConfig`
    when the checkpoint was written through the :mod:`repro.api` layer,
    else ``None``.  An embedded config this build cannot parse (e.g. a
    newer format) degrades to ``None`` with a warning rather than making
    the whole checkpoint unreadable — the flat fields still restore it.

    ``load_arrays=False`` skips materialising the ``modes`` /
    ``singular_values`` arrays (both ``None`` in the result) — for
    callers that only need configuration/identity, e.g.
    :func:`repro.api.checkpoint_run_config`, which would otherwise pay
    the full mode-matrix read twice per resume.
    """
    path = pathlib.Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            if "format_version" not in data:
                raise DataFormatError(f"{path}: not a streaming checkpoint")
            version = int(data["format_version"])
            if version != CHECKPOINT_VERSION:
                raise DataFormatError(
                    f"{path}: checkpoint format v{version} is not supported "
                    f"by this build (expected v{CHECKPOINT_VERSION})"
                )
            seed = int(data["config_seed"])
            config = SVDConfig(
                K=int(data["config_K"]),
                ff=float(data["config_ff"]),
                low_rank=bool(data["config_low_rank"]),
                r1=int(data["config_r1"]),
                r2=int(data["config_r2"]),
                oversampling=int(data["config_oversampling"]),
                power_iters=int(data["config_power_iters"]),
                seed=None if seed < 0 else seed,
            )
            # Parallel run options were added within format v1; older v1
            # files fall back to the historical defaults.
            group = (
                int(data["par_apmos_group_size"])
                if "par_apmos_group_size" in data
                else -1
            )
            run_config: Optional["RunConfig"] = None
            if "run_config_json" in data:
                from ..config import RunConfig
                from ..exceptions import ConfigurationError

                try:
                    run_config = RunConfig.from_json(
                        str(data["run_config_json"])
                    )
                except ConfigurationError as exc:
                    warnings.warn(
                        f"{path}: ignoring embedded run config this build "
                        f"cannot parse ({exc}); restoring from the flat "
                        f"checkpoint fields instead",
                        stacklevel=2,
                    )
            return {
                "run_config": run_config,
                "config": config,
                "kind": str(data["kind"]),
                "modes": np.array(data["modes"]) if load_arrays else None,
                "singular_values": (
                    np.array(data["singular_values"]) if load_arrays else None
                ),
                "iteration": int(data["iteration"]),
                "n_seen": int(data["n_seen"]),
                "rank": int(data["rank"]),
                "nranks": int(data["nranks"]),
                "qr_variant": (
                    str(data["par_qr_variant"])
                    if "par_qr_variant" in data
                    else "gather"
                ),
                "gather": (
                    str(data["par_gather"]) if "par_gather" in data else "bcast"
                ),
                "apmos_group_size": None if group < 0 else group,
            }
    except (OSError, ValueError, KeyError) as exc:
        raise DataFormatError(f"{path}: unreadable checkpoint: {exc}") from exc


def rank_checkpoint_path(path: PathLike, rank: int) -> pathlib.Path:
    """Per-rank shard path: ``state.npz`` -> ``state.rank3.npz``."""
    path = pathlib.Path(path)
    stem = path.stem if path.suffix == ".npz" else path.name
    return path.with_name(f"{stem}.rank{rank}.npz")
