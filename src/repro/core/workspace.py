"""Reusable GEMM/stacking workspaces for the streaming hot path.

The paper's claim is that per-batch cost is independent of the number of
snapshots seen; the per-step *constant* should then be dominated by FLOPs,
not by the allocator.  A :class:`Workspace` keeps one named buffer per
recurring intermediate — the fused scale-and-concat input, the updated
local modes, the rank-0 R stack — so a steady-state streaming loop writes
every large intermediate into memory it already owns (``np.multiply``/
``np.matmul`` with ``out=``) instead of allocating ~3 fresh
``(M_i, K + batch)`` arrays per step.

Buffers are keyed by name and re-created only when the requested shape or
dtype changes (e.g. a different batch width), so the workspace is safe for
ragged streams — it simply stops saving allocations at shape boundaries.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """A named pool of reusable, exactly-shaped scratch arrays."""

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    @staticmethod
    def _matches(
        buf: np.ndarray, shape: Tuple[int, ...], dtype, order: str
    ) -> bool:
        return (
            buf.shape == tuple(shape)
            and buf.dtype == dtype
            and (
                buf.flags.f_contiguous
                if order == "F"
                else buf.flags.c_contiguous
            )
        )

    def get(
        self,
        name: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        order: str = "C",
    ) -> np.ndarray:
        """The buffer registered under ``name``, (re)allocated to match
        ``shape``/``dtype``/``order``.  Contents are unspecified — callers
        overwrite.  ``order="F"`` suits buffers handed to LAPACK with
        ``overwrite_a`` (in-place factorization needs Fortran layout).
        """
        buf = self._buffers.get(name)
        if buf is None or not self._matches(buf, shape, dtype, order):
            buf = np.empty(shape, dtype=dtype, order=order)
            self._buffers[name] = buf
        return buf

    def take(
        self, name: str, shape: Tuple[int, ...], dtype: np.dtype
    ) -> np.ndarray:
        """Like :meth:`get`, but *removes* the buffer from the pool.

        Use when the result escapes the workspace (e.g. it becomes the
        instance's new ``_ulocal``): the pool forgets the array so a later
        :meth:`get`/:meth:`take` of the same name cannot hand out memory
        something else still references.  Returning the previous same-name
        escapee to the pool (:meth:`give_back`) makes two calls alternate
        between two stable buffers (double buffering).
        """
        buf = self._buffers.pop(name, None)
        if buf is None or not self._matches(buf, shape, dtype, "C"):
            buf = np.empty(shape, dtype=dtype)
        return buf

    def give_back(self, name: str, buf: np.ndarray) -> None:
        """Return an escaped buffer to the pool under ``name`` (it must no
        longer be referenced by live results)."""
        self._buffers[name] = buf

    def drop(self, name: str) -> None:
        """Forget the buffer registered under ``name``, if any."""
        self._buffers.pop(name, None)

    def clear(self) -> None:
        """Forget all buffers."""
        self._buffers.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by pooled buffers."""
        return sum(int(b.nbytes) for b in self._buffers.values())

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        entries = ", ".join(
            f"{k}:{v.shape}" for k, v in self._buffers.items()
        )
        return f"Workspace({entries})"
