"""Approximate Partitioned Method Of Snapshots (paper Algorithm 2).

APMOS computes the truncated *global* left singular vectors of a snapshot
matrix that is row-block distributed over the ranks of a domain-decomposed
simulation (rank ``i`` owns ``A_i`` of shape ``(M_i, N)``):

1. each rank computes its local right singular vectors,
   ``A_i = U_i S_i V_i^T``, and truncates ``(V_i, S_i)`` to ``r1`` columns;
2. the weighted matrices ``W_i = V_i S_i`` are gathered at rank 0 and
   stacked column-wise into ``W`` (an ``N x (r1 * nranks)`` matrix);
3. rank 0 factors ``W = X Lambda Y^T`` (dense or randomized) and broadcasts
   the leading ``r2`` columns of ``X`` and values ``Lambda``;
4. every rank assembles its slice of the global modes,
   ``U^i_j = (1 / Lambda_j) A_i X_j``.

``r1`` trades accuracy against gather volume; ``r2`` is the number of global
modes produced.  Paper defaults: ``r1 = 50``, ``r2 = 5``.

Note on the weighting: Algorithm 2 writes ``W_i = V_i (S_i)^T`` with
``S_i`` the diagonal matrix of local singular values, i.e. each retained
right vector is scaled by its singular value — ``V_i * s_i`` column-wise,
which is what :func:`generate_right_vectors` returns.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.linalg import as_floating, economy_svd
from ..utils.rng import RngLike
from .randomized import low_rank_svd

__all__ = [
    "generate_right_vectors",
    "stack_gathered",
    "apmos_svd",
    "apmos_svd_two_level",
]

#: Relative threshold below which singular values from a direct SVD are
#: considered zero (rank-deficient blocks would otherwise inject noise
#: directions).
_RELATIVE_RANK_TOL_SVD = 1e-12
#: The method-of-snapshots route squares the conditioning (eigenvalues of
#: the Gram matrix carry O(eps * ||A||^2) noise), so after the square root
#: the usable relative accuracy floor is O(sqrt(eps)).
_RELATIVE_RANK_TOL_MOS = 10.0 * float(np.finfo(float).eps) ** 0.5


def generate_right_vectors(
    a_local: np.ndarray, r1: int, method: str = "auto"
) -> Tuple[np.ndarray, np.ndarray]:
    """Local right singular vectors and values, truncated to ``r1``.

    Parameters
    ----------
    a_local:
        ``(M_i, N)`` local row block of the snapshot matrix.
    r1:
        Maximum number of retained columns (clipped to the numerical rank).
    method:
        ``"svd"`` — economy SVD of ``A_i``;
        ``"mos"`` — method of snapshots: eigendecomposition of the ``N x N``
        Gram matrix ``A_i^T A_i`` (cheaper when ``M_i >> N``, the regime the
        paper targets);
        ``"auto"`` — ``"mos"`` when ``M_i >= 4 N``, else ``"svd"``.

    Returns
    -------
    (V, s):
        ``V`` of shape ``(N, k)`` and ``s`` of shape ``(k,)`` with
        ``k = min(r1, numerical rank)``; columns ordered by descending ``s``.
    """
    a_local = as_floating(a_local, "a_local")
    if a_local.ndim != 2:
        raise ShapeError(f"a_local must be 2-D, got ndim={a_local.ndim}")
    if r1 <= 0:
        raise ShapeError(f"r1 must be positive, got {r1}")
    m_i, n = a_local.shape

    if method == "auto":
        method = "mos" if m_i >= 4 * n else "svd"
    if method == "svd":
        _, s, vt = economy_svd(a_local)
        v = vt.T
        rel_tol = _RELATIVE_RANK_TOL_SVD
    elif method == "mos":
        gram = a_local.T @ a_local
        evals, evecs = np.linalg.eigh(gram)
        # eigh returns ascending order; flip to descending singular order.
        evals = evals[::-1]
        v = evecs[:, ::-1]
        s = np.sqrt(np.clip(evals, 0.0, None))
        rel_tol = _RELATIVE_RANK_TOL_MOS
    else:
        raise ShapeError(f"unknown method {method!r} (use 'auto'|'svd'|'mos')")

    tol = rel_tol * (s[0] if s.size else 0.0)
    k = int(np.sum(s > tol))
    k = max(min(k, r1), 1) if s.size else 0
    return v[:, :k], s[:k]


def stack_gathered(wlocals: list) -> np.ndarray:
    """Column-stack the gathered per-rank ``W_i`` blocks into ``W``.

    Mirrors the rank-0 concatenation loop of Listing 3.  Blocks may have
    different column counts (ranks may have different numerical ranks).
    """
    if not wlocals:
        raise ShapeError("gathered W list is empty")
    return np.concatenate(wlocals, axis=1)


def apmos_svd(
    comm,
    a_local: np.ndarray,
    r1: int,
    r2: int,
    low_rank: bool = False,
    oversampling: int = 0,
    power_iters: int = 0,
    rng: RngLike = None,
    method: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot distributed SVD via APMOS (Algorithm 2 / Listing 3).

    Parameters
    ----------
    comm:
        Communicator (``repro.smpi`` or any object with the same surface).
    a_local:
        ``(M_i, N)`` local row block; all ranks must agree on ``N``.
    r1, r2:
        Truncation factors (see module docstring).
    low_rank:
        Use the randomized SVD for the rank-0 factorization of ``W``.
    oversampling, power_iters, rng:
        Randomized-SVD parameters (only used when ``low_rank=True``).
    method:
        Local right-vector scheme passed to :func:`generate_right_vectors`.

    Returns
    -------
    (u_local, s):
        ``u_local`` — the ``(M_i, k)`` local slice of the global left
        singular vectors; ``s`` — the ``(k,)`` global singular values,
        ``k = min(r2, rank of W)``.  Every rank returns the same ``s``.
    """
    a_local = as_floating(a_local, "a_local")
    vlocal, slocal = generate_right_vectors(a_local, r1, method=method)

    # W_i = V_i * s_i (column scaling by the local singular values).
    # vlocal is freshly factored, so the scaling is applied in place.
    wlocal = vlocal
    wlocal *= slocal[np.newaxis, :]

    wglobal = comm.gather(wlocal, root=0)
    if comm.rank == 0:
        w = stack_gathered(wglobal)
        if low_rank:
            x, lam = low_rank_svd(
                w,
                r2,
                oversampling=oversampling,
                power_iters=power_iters,
                rng=rng,
            )
        else:
            x, lam, _ = economy_svd(w)
        keep = min(r2, lam.shape[0])
        # Guard the 1/Lambda_j division downstream: drop directions whose
        # value sits at the numerical-noise floor of the gathered W.
        floor = lam[0] * _RELATIVE_RANK_TOL_MOS if lam.size else 0.0
        keep = max(int(np.sum(lam[:keep] > floor)), 1)
        x = np.ascontiguousarray(x[:, :keep])
        lam = lam[:keep]
    else:
        x = None
        lam = None
    x = comm.bcast(x, root=0)
    lam = comm.bcast(lam, root=0)

    # Local assembly: U^i = A_i X diag(1/Lambda) — one GEMM for all modes
    # (the paper's listing loops mode-by-mode; the batched product is
    # algebraically identical).  The GEMM output is scratch, so the
    # 1/Lambda scaling happens in place instead of allocating a second
    # (M_i, k) array.
    u_local = a_local @ x
    u_local /= lam[np.newaxis, :]
    return u_local, lam


def apmos_svd_two_level(
    comm,
    a_local: np.ndarray,
    r1: int,
    r2: int,
    group_size: int,
    low_rank: bool = False,
    oversampling: int = 0,
    power_iters: int = 0,
    rng: RngLike = None,
    method: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Hierarchical APMOS: reduce ``W`` within groups before the root SVD.

    Flat APMOS gathers one ``N x r1`` block from *every* rank at rank 0, so
    both the gather volume and the width of the root factorization grow
    linearly with the rank count — the terms that bend the paper's
    weak-scaling curve (Figure 1c).  This extension exploits that the ``W``
    stacking is associative:

    1. ranks are split into groups of ``group_size``; each group leader
       gathers its members' ``W_i``, stacks them and factors the group
       matrix, truncating to ``r1`` columns (``X_g diag(Lambda_g)`` is a
       rank-``r1`` surrogate for the group's stacked ``W``);
    2. only the group surrogates travel to rank 0, whose SVD now has width
       ``r1 * ceil(p / group_size)`` instead of ``r1 * p``;
    3. the broadcast/assembly stage is unchanged.

    The second truncation is of the same nature as APMOS's own ``r1``
    truncation: exact whenever the group's stacked ``W`` has rank <= r1,
    and a controlled approximation otherwise (tested in the suite).

    Parameters are as in :func:`apmos_svd` plus ``group_size >= 1``
    (``group_size >= comm.size`` degenerates to flat APMOS with an extra
    communicator split).
    """
    if group_size < 1:
        raise ShapeError(f"group_size must be >= 1, got {group_size}")
    a_local = as_floating(a_local, "a_local")
    vlocal, slocal = generate_right_vectors(a_local, r1, method=method)
    wlocal = vlocal
    wlocal *= slocal[np.newaxis, :]

    group = comm.rank // group_size
    subcomm = comm.split(color=group)
    leader = subcomm.rank == 0

    # stage 1: in-group reduction at each group leader
    wgroup = subcomm.gather(wlocal, root=0)
    if leader:
        stacked = stack_gathered(wgroup)
        xg, lamg, _ = economy_svd(stacked)
        keep_g = min(r1, lamg.shape[0])
        floor_g = lamg[0] * _RELATIVE_RANK_TOL_MOS if lamg.size else 0.0
        keep_g = max(int(np.sum(lamg[:keep_g] > floor_g)), 1)
        surrogate = xg[:, :keep_g] * lamg[np.newaxis, :keep_g]
    else:
        surrogate = None

    # stage 2: leaders-only reduction at global rank 0.  Build the leader
    # communicator collectively (every rank participates in the split).
    leadercomm = comm.split(color=0 if leader else None)
    if leader:
        wglobal = leadercomm.gather(surrogate, root=0)
        if leadercomm.rank == 0:
            w = stack_gathered(wglobal)
            if low_rank:
                x, lam = low_rank_svd(
                    w,
                    r2,
                    oversampling=oversampling,
                    power_iters=power_iters,
                    rng=rng,
                )
            else:
                x, lam, _ = economy_svd(w)
            keep = min(r2, lam.shape[0])
            floor = lam[0] * _RELATIVE_RANK_TOL_MOS if lam.size else 0.0
            keep = max(int(np.sum(lam[:keep] > floor)), 1)
            x = np.ascontiguousarray(x[:, :keep])
            lam = lam[:keep]
        else:
            x = None
            lam = None
    else:
        x = None
        lam = None

    # stage 3: broadcast from global rank 0 (which is always a leader)
    x = comm.bcast(x, root=0)
    lam = comm.bcast(lam, root=0)
    u_local = a_local @ x
    u_local /= lam[np.newaxis, :]
    return u_local, lam
