"""Convergence monitoring for streaming SVD runs.

For in-situ deployments the interesting operational question is *when the
retained modes have stabilised* — once they have, a user can stop
ingesting, checkpoint, or begin downstream analysis.  The monitor tracks
the per-batch history of the singular values and the subspace drift of the
modes, and declares convergence when both fall below tolerances for a
number of consecutive batches.

>>> monitor = ConvergenceMonitor(value_tol=1e-6, angle_tol_deg=1e-3)
>>> for batch in stream:
...     svd.incorporate_data(batch)
...     if monitor.update(svd.modes, svd.singular_values):
...         break
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..utils.linalg import subspace_angles_deg

__all__ = ["ConvergenceMonitor", "ConvergenceRecord"]


@dataclasses.dataclass(frozen=True)
class ConvergenceRecord:
    """Per-update convergence sample."""

    iteration: int
    max_value_change: float
    max_angle_deg: float
    converged: bool


class ConvergenceMonitor:
    """Detects stabilisation of a streaming SVD.

    Parameters
    ----------
    value_tol:
        Maximum allowed relative change of any retained singular value
        between consecutive updates.
    angle_tol_deg:
        Maximum allowed principal angle (degrees) between consecutive mode
        subspaces.
    patience:
        Number of *consecutive* updates that must satisfy both tolerances
        before :attr:`converged` flips to True.
    """

    def __init__(
        self,
        value_tol: float = 1e-6,
        angle_tol_deg: float = 1e-3,
        patience: int = 2,
    ) -> None:
        if value_tol <= 0 or angle_tol_deg <= 0:
            raise ConfigurationError("tolerances must be positive")
        if patience < 1:
            raise ConfigurationError("patience must be >= 1")
        self.value_tol = value_tol
        self.angle_tol_deg = angle_tol_deg
        self.patience = patience
        self.history: List[ConvergenceRecord] = []
        self._prev_values: Optional[np.ndarray] = None
        self._prev_modes: Optional[np.ndarray] = None
        self._streak = 0

    @property
    def converged(self) -> bool:
        """Has the stream satisfied the tolerances for ``patience`` updates?"""
        return self._streak >= self.patience

    @property
    def iterations(self) -> int:
        return len(self.history)

    def update(self, modes: np.ndarray, singular_values: np.ndarray) -> bool:
        """Record one update; returns the current converged flag.

        The first call only establishes the baseline (never converged).
        A change in the number of retained values resets the comparison
        (common early in a stream while fewer than K snapshots are seen).
        """
        modes = np.asarray(modes, dtype=float)
        values = np.asarray(singular_values, dtype=float)

        if (
            self._prev_values is None
            or self._prev_values.shape != values.shape
            or self._prev_modes.shape != modes.shape  # type: ignore[union-attr]
        ):
            value_change = np.inf
            angle = np.inf
            self._streak = 0
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                rel = np.where(
                    self._prev_values > 0,
                    np.abs(values - self._prev_values) / self._prev_values,
                    np.abs(values),
                )
            value_change = float(np.max(rel)) if rel.size else 0.0
            angle = float(np.max(subspace_angles_deg(self._prev_modes, modes)))
            if value_change <= self.value_tol and angle <= self.angle_tol_deg:
                self._streak += 1
            else:
                self._streak = 0

        self._prev_values = values.copy()
        self._prev_modes = modes.copy()
        self.history.append(
            ConvergenceRecord(
                iteration=len(self.history) + 1,
                max_value_change=value_change,
                max_angle_deg=angle,
                converged=self.converged,
            )
        )
        return self.converged

    def value_change_history(self) -> np.ndarray:
        """Per-update max relative singular-value change (inf = baseline)."""
        return np.array([r.max_value_change for r in self.history])

    def reset(self) -> None:
        """Forget all state (e.g. after a regime change is detected)."""
        self.history.clear()
        self._prev_values = None
        self._prev_modes = None
        self._streak = 0
