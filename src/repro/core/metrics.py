"""Accuracy metrics for comparing SVD results (paper Figure 1a/1b).

The paper validates the parallel+randomized computation against a serial
evaluation by plotting mode shapes and their pointwise error.  These helpers
make the comparison quantitative and sign-ambiguity-safe.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..exceptions import ShapeError
from ..utils.linalg import align_signs, subspace_angles_deg

__all__ = [
    "mode_errors",
    "mode_error_curve",
    "spectrum_relative_error",
    "ModeComparison",
    "compare_modes",
]


def _check_pair(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ShapeError(
            f"comparison requires equal shapes, got {a.shape} vs {b.shape}"
        )


def mode_errors(reference: np.ndarray, candidate: np.ndarray) -> np.ndarray:
    """Per-mode relative L2 error after sign alignment.

    ``errors[j] = ||ref_j - cand_j|| / ||ref_j||`` with ``cand`` sign-flipped
    per column to best match ``ref``.
    """
    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    _check_pair(reference, candidate)
    aligned = align_signs(reference, candidate)
    num = np.linalg.norm(reference - aligned, axis=0)
    den = np.linalg.norm(reference, axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(den > 0, num / den, num)


def mode_error_curve(
    reference: np.ndarray, candidate: np.ndarray, mode: int
) -> np.ndarray:
    """Pointwise error of one mode — the quantity Figure 1(a,b) plots.

    Returns ``ref[:, mode] - aligned_cand[:, mode]`` so callers can inspect
    (or plot) where on the grid the discrepancy lives.
    """
    reference = np.asarray(reference)
    candidate = np.asarray(candidate)
    _check_pair(reference, candidate)
    if not (0 <= mode < reference.shape[1]):
        raise ShapeError(
            f"mode {mode} outside [0, {reference.shape[1]})"
        )
    aligned = align_signs(reference, candidate)
    return reference[:, mode] - aligned[:, mode]


def spectrum_relative_error(
    reference: np.ndarray, candidate: np.ndarray
) -> np.ndarray:
    """Per-value relative error of two singular-value arrays (equal length)."""
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if reference.shape != candidate.shape:
        raise ShapeError(
            f"spectra must have equal length, got {reference.shape} vs "
            f"{candidate.shape}"
        )
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(
            reference != 0,
            np.abs(reference - candidate) / np.abs(reference),
            np.abs(candidate),
        )


@dataclasses.dataclass(frozen=True)
class ModeComparison:
    """Bundle of serial-vs-parallel agreement metrics.

    Attributes
    ----------
    mode_rel_errors:
        Per-mode relative L2 error (sign aligned).
    spectrum_rel_errors:
        Per-singular-value relative error.
    max_subspace_angle_deg:
        Largest principal angle between the two mode subspaces.
    """

    mode_rel_errors: np.ndarray
    spectrum_rel_errors: np.ndarray
    max_subspace_angle_deg: float

    @property
    def worst_mode_error(self) -> float:
        return float(np.max(self.mode_rel_errors))

    @property
    def worst_spectrum_error(self) -> float:
        return float(np.max(self.spectrum_rel_errors))

    def agrees(self, mode_tol: float = 1e-6, angle_tol_deg: float = 1e-3) -> bool:
        """True when both mode errors and subspace angle are below tolerance."""
        return (
            self.worst_mode_error <= mode_tol
            and self.max_subspace_angle_deg <= angle_tol_deg
        )


def compare_modes(
    ref_modes: np.ndarray,
    ref_values: np.ndarray,
    cand_modes: np.ndarray,
    cand_values: np.ndarray,
    n_modes: Optional[int] = None,
) -> ModeComparison:
    """Full comparison of two truncated SVD results.

    ``n_modes`` limits the comparison to the leading modes (the trailing
    modes of a truncated factorization are the least converged and the
    paper's validation focuses on the leading pair).
    """
    k = min(
        ref_modes.shape[1],
        cand_modes.shape[1],
        ref_values.shape[0],
        cand_values.shape[0],
    )
    if n_modes is not None:
        if n_modes <= 0:
            raise ShapeError(f"n_modes must be positive, got {n_modes}")
        k = min(k, n_modes)
    ref_m = ref_modes[:, :k]
    cand_m = cand_modes[:, :k]
    return ModeComparison(
        mode_rel_errors=mode_errors(ref_m, cand_m),
        spectrum_rel_errors=spectrum_relative_error(
            ref_values[:k], cand_values[:k]
        ),
        max_subspace_angle_deg=float(
            np.max(subspace_angles_deg(ref_m, cand_m))
        ),
    )
