"""``ParSVDBase`` — shared machinery of the serial and parallel classes.

The paper (section 4): "we define a base class, namely Parsvd_Base that
implements functions shared across the two derived classes Parsvd_Serial and
Parsvd_Parallel.  We also provide a convenient post-processing module ...
linked with the base class", i.e. the plotting/reporting entry points are
callable from the class object.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Optional, Union

import numpy as np

from ..config import SVDConfig
from ..exceptions import NotInitializedError, ShapeError
from ..utils.linalg import as_floating

__all__ = ["ParSVDBase"]


class ParSVDBase:
    """Common state, validation and convenience API for streaming SVDs.

    Subclasses implement :meth:`initialize` (first batch) and
    :meth:`incorporate_data` (subsequent batches) and populate
    ``self._modes`` / ``self._singular_values`` / ``self._iteration``.

    Parameters
    ----------
    K:
        Number of modes to track.
    ff:
        Forget factor in ``(0, 1]``.
    low_rank:
        Replace inner dense SVDs with the randomized low-rank SVD.
    config:
        Alternatively, a fully populated :class:`~repro.config.SVDConfig`;
        keyword arguments override its fields.
    """

    def __init__(
        self,
        K: Optional[int] = None,
        ff: Optional[float] = None,
        low_rank: Optional[bool] = None,
        config: Optional[SVDConfig] = None,
        **extra: object,
    ) -> None:
        base = config if config is not None else SVDConfig()
        overrides = {}
        if K is not None:
            overrides["K"] = K
        if ff is not None:
            overrides["ff"] = ff
        if low_rank is not None:
            overrides["low_rank"] = low_rank
        overrides.update(extra)
        self._config = base.replace(**overrides) if overrides else base
        self._modes: Optional[np.ndarray] = None
        self._singular_values: Optional[np.ndarray] = None
        self._iteration: int = 0
        self._n_seen: int = 0
        self._n_dof: Optional[int] = None

    # -- configuration accessors ------------------------------------------
    @property
    def config(self) -> SVDConfig:
        """The validated configuration this instance runs with."""
        return self._config

    @property
    def K(self) -> int:
        """Number of tracked modes."""
        return self._config.K

    @property
    def ff(self) -> float:
        """Streaming forget factor."""
        return self._config.ff

    @property
    def low_rank(self) -> bool:
        """Whether randomized inner SVDs are enabled."""
        return self._config.low_rank

    # -- results ----------------------------------------------------------
    @property
    def initialized(self) -> bool:
        """Has :meth:`initialize` been called?"""
        return self._singular_values is not None

    def _require_initialized(self) -> None:
        if not self.initialized:
            raise NotInitializedError(
                f"{type(self).__name__}: call initialize(A0) before "
                "incorporate_data / accessing results"
            )

    @property
    def modes(self) -> np.ndarray:
        """``(M, k)`` left singular vectors (global; gathered if parallel)."""
        self._require_initialized()
        assert self._modes is not None
        return self._modes

    @property
    def singular_values(self) -> np.ndarray:
        """``(k,)`` singular values, descending."""
        self._require_initialized()
        assert self._singular_values is not None
        return self._singular_values

    @property
    def iteration(self) -> int:
        """Number of batches ingested so far."""
        return self._iteration

    @property
    def n_seen(self) -> int:
        """Total number of snapshots ingested so far."""
        return self._n_seen

    # -- streaming driver ----------------------------------------------------
    def initialize(self, A: np.ndarray) -> "ParSVDBase":
        """Factor the first batch; returns ``self`` for chaining."""
        raise NotImplementedError

    def incorporate_data(self, A: np.ndarray) -> "ParSVDBase":
        """Ingest one more batch; returns ``self`` for chaining."""
        raise NotImplementedError

    def fit_stream(self, batches: Iterable[np.ndarray]) -> "ParSVDBase":
        """Drive the full streaming pipeline over an iterable of batches.

        The first batch goes through :meth:`initialize`, the rest through
        :meth:`incorporate_data` — the paper's usage pattern as a one-liner.
        """
        got_any = False
        for batch in batches:
            if not got_any:
                self.initialize(batch)
                got_any = True
            else:
                self.incorporate_data(batch)
        if not got_any:
            raise ShapeError("fit_stream received an empty batch iterable")
        return self

    # -- batch shape validation shared by subclasses ----------------------
    def _validate_first_batch(self, A: np.ndarray) -> np.ndarray:
        A = as_floating(A, "snapshot batch")
        if A.ndim != 2:
            raise ShapeError(
                f"snapshot batch must be 2-D (dofs x snapshots), got "
                f"ndim={A.ndim}"
            )
        if A.shape[1] < 1:
            raise ShapeError("first batch must contain at least one snapshot")
        self._n_dof = A.shape[0]
        return A

    def _validate_next_batch(self, A: np.ndarray) -> np.ndarray:
        self._require_initialized()
        A = as_floating(A, "snapshot batch")
        if A.ndim != 2:
            raise ShapeError(
                f"snapshot batch must be 2-D (dofs x snapshots), got "
                f"ndim={A.ndim}"
            )
        if self._n_dof is not None and A.shape[0] != self._n_dof:
            raise ShapeError(
                f"batch has {A.shape[0]} degrees of freedom; this instance "
                f"was initialised with {self._n_dof}"
            )
        return A

    # -- persistence --------------------------------------------------------
    def save_results(self, path: Union[str, pathlib.Path]) -> pathlib.Path:
        """Persist modes/values/metadata to an ``.npz`` archive."""
        self._require_initialized()
        from .checkpoint import normalize_checkpoint_path

        path = normalize_checkpoint_path(path)
        np.savez(
            path,
            modes=self.modes,
            singular_values=self.singular_values,
            iteration=np.asarray(self._iteration),
            n_seen=np.asarray(self._n_seen),
            K=np.asarray(self.K),
            ff=np.asarray(self.ff),
        )
        return path

    @staticmethod
    def load_results(path: Union[str, pathlib.Path]) -> dict:
        """Load an archive written by :meth:`save_results`."""
        with np.load(pathlib.Path(path)) as data:
            return {
                "modes": data["modes"],
                "singular_values": data["singular_values"],
                "iteration": int(data["iteration"]),
                "n_seen": int(data["n_seen"]),
                "K": int(data["K"]),
                "ff": float(data["ff"]),
            }

    # -- postprocessing hooks (paper: callable from the class object) --------
    def plot_singular_values(self, **kwargs: object) -> str:
        """ASCII spectrum plot via :mod:`repro.postprocessing`."""
        from ..postprocessing.plots import plot_singular_values

        return plot_singular_values(self.singular_values, **kwargs)

    def plot_1d_modes(self, mode_indices=(0, 1), **kwargs: object) -> str:
        """ASCII plot of selected 1-D mode shapes."""
        from ..postprocessing.plots import plot_1d_modes

        return plot_1d_modes(self.modes, mode_indices=mode_indices, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            f"modes={self._modes.shape}" if self._modes is not None else "uninitialised"
        )
        return (
            f"{type(self).__name__}(K={self.K}, ff={self.ff}, "
            f"low_rank={self.low_rank}, iteration={self._iteration}, {state})"
        )
