"""``ParSVDParallel`` — streaming + distributed + randomized SVD
(paper Listings 2-4).

Each SPMD rank constructs one instance around its communicator and feeds it
the *local* row block of every snapshot batch (the domain-decomposition
layout of APMOS).  The streaming update structure is identical to the serial
class; the two dense kernels are swapped for their distributed counterparts:

* initialization uses the one-shot APMOS SVD (Algorithm 2, Listing 3);
* the streaming step uses the distributed tall-skinny QR (Listing 4)
  followed by a small SVD of the replicated ``R`` factor at rank 0.

Randomization (``low_rank=True``) replaces both rank-0 dense SVDs with the
randomized low-rank SVD; the sketch is drawn only at rank 0 and its results
broadcast, so all ranks observe a single consistent factorization.

Fidelity notes
--------------
* Listing 3 truncates the local right vectors to ``K`` columns
  (``generate_right_vectors(A, self._K)``); Algorithm 2 allows a separate
  ``r1`` (paper default 50).  We expose ``r1`` through the config and use
  ``max(K, r1)`` columns — strictly at least as accurate as the listing;
  setting ``r1=K`` reproduces the listing exactly.
* Listing 4's ``qglobal = -qglobal  # Trick for consistency`` is replaced by
  deterministic sign canonicalisation (see :mod:`repro.utils.linalg`).
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Optional, Tuple

import numpy as np

from ..config import RunConfig, SolverConfig
from ..obs import runtime as _obs
from ..exceptions import (
    CommunicatorError,
    ConfigurationError,
    DataFormatError,
    ShapeError,
)
from ..utils.linalg import economy_svd, truncate_svd
from ..utils.rng import resolve_rng
from ..utils.partition import block_partition
from .apmos import apmos_svd, apmos_svd_two_level
from .base import ParSVDBase
from .checkpoint import (
    normalize_checkpoint_path,
    rank_checkpoint_path,
    read_checkpoint,
    write_checkpoint,
)
from .randomized import low_rank_svd
from .tsqr import (
    PipelinedGatherStep,
    PipelinedTreeStep,
    tsqr_gather,
    tsqr_tree,
)
from .workspace import Workspace

__all__ = ["ParSVDParallel"]

#: Sentinel distinguishing "not passed" from an explicit ``None``/default,
#: so only genuinely legacy call sites trigger the deprecation shim.
_UNSET = object()

#: Legacy keyword parameters of ``ParSVDParallel.__init__``, in signature
#: order; each now lives on :class:`~repro.config.SolverConfig`.
_LEGACY_PARAMS = (
    "K",
    "ff",
    "low_rank",
    "qr_variant",
    "gather",
    "apmos_group_size",
    "workspace",
    "overlap",
)


def _legacy_kwargs_message(legacy: dict, config) -> str:
    """The deprecation message, carrying the exact replacement snippet for
    the call site's own arguments."""
    shown = []
    if config is not None:
        shown.append("config=...")
    shown.extend(f"{key}={value!r}" for key, value in legacy.items())
    solver_args = ", ".join(f"{key}={value!r}" for key, value in legacy.items())
    if config is not None:
        snippet = "SolverConfig.from_svd_config(config" + (
            f", {solver_args})" if solver_args else ")"
        )
    else:
        snippet = f"SolverConfig({solver_args})"
    return (
        f"ParSVDParallel(comm, {', '.join(shown)}) keyword arguments are "
        f"deprecated; build a typed config instead:\n"
        f"    from repro.api import RunConfig, Session, SolverConfig\n"
        f"    cfg = RunConfig(solver={snippet})\n"
        f"    with Session(cfg, comm=comm) as session:\n"
        f"        session.fit_stream(batches)\n"
        f"or construct the driver directly via "
        f"ParSVDParallel(comm, solver={snippet})."
    )


class ParSVDParallel(ParSVDBase):
    """Distributed streaming truncated SVD over a row-block decomposition.

    Parameters
    ----------
    comm:
        Communicator for this rank (:mod:`repro.smpi` or compatible).
    solver:
        A :class:`~repro.config.SolverConfig` carrying every algorithm
        and run option below — the **canonical** construction path
        (:class:`~repro.api.Session` builds drivers this way).  Mutually
        exclusive with the legacy keyword arguments.
    K, ff, low_rank, config:
        As in :class:`~repro.core.base.ParSVDBase`.  *Deprecated* along
        with every keyword below: passing any of them emits a
        ``DeprecationWarning`` whose message carries the exact
        ``SolverConfig`` replacement for the call site; the behaviour is
        unchanged (the shim builds the same config internally).
    qr_variant:
        ``"gather"`` (the paper's Listing 4 pattern, default) or ``"tree"``
        (binary-reduction TSQR; same numbers, different communication).
    gather:
        What :attr:`modes` holds once assembled —
        ``"bcast"`` (default): global modes on *every* rank;
        ``"root"``: global modes on rank 0 only (others raise; use
        :attr:`local_modes`);
        ``"none"``: no gathering; :attr:`modes` is the local block.
    workspace:
        ``True`` (default) enables the allocation-free streaming fast
        lane: a persistent per-instance :class:`~repro.core.workspace.
        Workspace` backs the fused scale-and-concat input, the TSQR
        ``R``-stack and the updated local modes, so a steady-state
        ``incorporate_data`` performs its large intermediates with
        ``out=`` GEMMs into reused buffers.  The numbers are identical to
        the ``False`` (seed) path — the test suite asserts agreement to
        1e-12 — but :attr:`local_modes` then aliases workspace memory:
        a block handed out at step ``t`` is overwritten at step ``t + 2``
        (double buffering), so copy it if you need it to survive further
        updates.  Set ``False`` for fresh arrays every step.
    overlap:
        ``True`` pipelines the streaming update: ``incorporate_data``
        performs the local QR, posts the step's communication
        (:class:`~repro.core.tsqr.PipelinedGatherStep` /
        :class:`~repro.core.tsqr.PipelinedTreeStep` — receives preposted,
        fused single-message replies) and **returns with the step in
        flight**; the caller's next batch ingest (IO, simulation,
        :class:`~repro.data.streams.PrefetchStream` refills) overlaps the
        in-flight collectives.  The step completes lazily — at the next
        ``incorporate_data`` or on any result access (``modes``,
        ``local_modes``, ``singular_values``, checkpointing).  Numbers are
        identical to ``overlap=False`` (asserted to 1e-12 by the test
        suite).  As with lazy mode gathering, completion is collective in
        effect: a rank that never completes its step never releases its
        peers, so all ranks must advance (update or read results) in the
        same pattern.  Give each overlapped instance its own
        communicator (``comm.dup()``) if several stream concurrently on
        one group — in-flight steps of different instances must not
        share a tag space.

    Notes
    -----
    Mode assembly is **lazy**: ``initialize``/``incorporate_data`` only
    invalidate the cached gathered modes, and the gather (+ broadcast)
    collective runs on the first :attr:`modes` access after an update.  A
    pure streaming loop that never reads :attr:`modes` therefore performs
    *zero* mode-assembly communication — the per-batch cost the paper's
    Listing 2 avoids.  Because assembly is collective (for ``"bcast"`` and
    ``"root"``), every rank must read :attr:`modes` (or call
    :meth:`assemble_modes`) the same number of times relative to updates;
    an internal epoch counter makes repeated reads free and keeps ranks
    aligned.  :attr:`local_modes` never communicates.

    Results that arrive over a broadcast (:attr:`modes` under
    ``gather="bcast"`` on non-root ranks, :attr:`singular_values` away
    from rank 0) are **read-only** views of the zero-copy snapshot the
    communicator shares between receivers; in-place mutation raises
    ``ValueError`` there (while rank 0 holds its own writable original).
    Treat collective results as immutable — copy first if you must write.

    Examples
    --------
    Run with 4 ranks via the SPMD executor::

        from repro.config import SolverConfig
        from repro.smpi import run_spmd
        from repro.utils import block_partition

        def job(comm):
            part = block_partition(n_dof, comm.size)
            block = data[part.slice_of(comm.rank), :]
            svd = ParSVDParallel(comm, solver=SolverConfig(K=10, ff=0.95))
            svd.initialize(block[:, :100])
            svd.incorporate_data(block[:, 100:200])
            return svd.singular_values

        values = run_spmd(4, job)

    (Or, one level up: :class:`repro.api.Session` builds the driver,
    partitions the rows and owns the communicator — the construction
    path all shipped entry points use.)
    """

    def __init__(
        self,
        comm,
        K=_UNSET,
        ff=_UNSET,
        low_rank=_UNSET,
        config=_UNSET,
        qr_variant=_UNSET,
        gather=_UNSET,
        apmos_group_size=_UNSET,
        workspace=_UNSET,
        overlap=_UNSET,
        *,
        solver: Optional[SolverConfig] = None,
        **extra,
    ) -> None:
        # On the legacy signature an explicit None on K/ff/low_rank (its
        # own defaults) or apmos_group_size (None = flat APMOS) meant
        # "use the config/default value" — those neither override nor
        # count as a legacy-kwarg call.  The other options had concrete
        # defaults, so an explicit None there passes through to
        # SolverConfig validation and fails loudly.
        legacy = {
            name: value
            for name, value in zip(
                _LEGACY_PARAMS,
                (K, ff, low_rank, qr_variant, gather, apmos_group_size,
                 workspace, overlap),
            )
            if value is not _UNSET
            and not (
                value is None
                and name in ("K", "ff", "low_rank", "apmos_group_size")
            )
        }
        legacy.update(extra)
        legacy_config = config if config is not _UNSET else None
        if solver is not None:
            if legacy or legacy_config is not None:
                raise ConfigurationError(
                    "pass either solver=SolverConfig(...) or the legacy "
                    "keyword arguments, not both"
                )
            if not isinstance(solver, SolverConfig):
                raise ConfigurationError(
                    f"solver must be a SolverConfig, got "
                    f"{type(solver).__name__}"
                )
            resolved = solver
        else:
            if legacy or legacy_config is not None:
                warnings.warn(
                    _legacy_kwargs_message(legacy, legacy_config),
                    DeprecationWarning,
                    stacklevel=2,
                )
            if legacy_config is not None:
                resolved = SolverConfig.from_svd_config(legacy_config, **legacy)
            else:
                resolved = SolverConfig(**legacy)
        super().__init__(config=resolved)
        self.comm = comm
        self._qr_variant = resolved.qr_variant
        self._gather = resolved.gather
        self._apmos_group_size = resolved.apmos_group_size
        self._workspace: Optional[Workspace] = (
            Workspace() if resolved.workspace else None
        )
        self._overlap = bool(resolved.overlap)
        # In-flight pipelined step (overlap mode): posted by
        # incorporate_data, completed lazily by the next update or by any
        # result accessor.  _pending_error poisons the instance after a
        # failed completion — its state no longer reflects the counters.
        self._pending = None
        self._pending_error: Optional[BaseException] = None
        # Serialises pending-step completion between this driver's thread
        # and a background progress daemon (repro.health): finalize /
        # abort take it blocking, the daemon's try_finalize_pending only
        # opportunistically (never stalls the hot path).  Reentrant so
        # try_finalize_pending can call _finalize_pending under it.
        self._pending_lock = threading.RLock()
        # Observability: perf_counter stamp of the in-flight step's post
        # (None while observability is off — the disabled path must not
        # allocate).
        self._pending_posted_t: Optional[float] = None
        self._ulocal: Optional[np.ndarray] = None
        # Lazy mode assembly: _modes_epoch counts factorization updates,
        # _modes_synced_epoch the update the cached gathered modes belong
        # to.  The collective in assemble_modes() runs only when they
        # differ, so every rank performs it the same number of times.
        self._modes_epoch: int = 0
        self._modes_synced_epoch: int = 0
        # Only rank 0 consumes randomness (sketches are drawn at the root
        # and broadcast); all ranks derive the same stream for determinism
        # regardless of which rank ends up drawing.
        self._rng = resolve_rng(self._config.seed)

    @property
    def solver(self) -> SolverConfig:
        """The full :class:`~repro.config.SolverConfig` this driver runs
        with (algorithm parameters *and* run options)."""
        assert isinstance(self._config, SolverConfig)
        return self._config

    # -- distributed kernels (paper Listings 3 and 4) ------------------------
    def parallel_svd(
        self, a_local: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One-shot distributed SVD of a row-distributed matrix (Listing 3).

        Returns ``(u_local, s)``: this rank's block of the ``K`` global left
        singular vectors, and the global singular values.
        """
        cfg = self._config
        if self._apmos_group_size is not None:
            return apmos_svd_two_level(
                self.comm,
                a_local,
                r1=max(cfg.K, cfg.r1),
                r2=cfg.K,
                group_size=self._apmos_group_size,
                low_rank=cfg.low_rank,
                oversampling=cfg.oversampling,
                power_iters=cfg.power_iters,
                rng=self._rng,
            )
        return apmos_svd(
            self.comm,
            a_local,
            r1=max(cfg.K, cfg.r1),
            r2=cfg.K,
            low_rank=cfg.low_rank,
            oversampling=cfg.oversampling,
            power_iters=cfg.power_iters,
            rng=self._rng,
        )

    def parallel_qr(
        self, a_local: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distributed QR + small SVD of the global R factor (Listing 4).

        Returns ``(q_local, u_new, s_new)`` where ``q_local`` is this rank's
        block of the global orthonormal factor and ``(u_new, s_new)`` is the
        (possibly randomized) SVD of the replicated global ``R`` — "step b
        of Levy-Lindenbaum - small operation" in the listing.

        With the workspace fast lane enabled (the default) ``a_local`` is
        treated as caller-owned scratch: the gather-variant TSQR writes
        ``q_local`` in place over it.  Pass ``workspace=False`` at
        construction if you call this directly and need ``a_local``
        preserved.
        """
        self._finalize_pending()
        if self._qr_variant == "tree":
            q_local, r_final = tsqr_tree(
                self.comm, a_local, workspace=self._workspace
            )
        else:
            q_local, r_final = tsqr_gather(
                self.comm, a_local, workspace=self._workspace
            )

        # SVD the small replicated factor once, at rank 0, and broadcast —
        # with randomization enabled this keeps every rank on the same
        # sketch realisation.
        if self.comm.rank == 0:
            payload: Optional[Tuple[np.ndarray, np.ndarray]] = self._reduce_r(
                r_final
            )
        else:
            payload = None
        u_new, s_new = self.comm.bcast(payload, root=0)
        return q_local, u_new, s_new

    def _reduce_r(self, r_final: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Rank-0 reduction of the replicated TSQR ``R``: the streaming
        update's small (possibly randomized) SVD.  Consumes ``r_final`` in
        place on the workspace fast lane."""
        cfg = self._config
        if cfg.low_rank:
            return low_rank_svd(
                r_final,
                cfg.K,
                oversampling=cfg.oversampling,
                power_iters=cfg.power_iters,
                rng=self._rng,
            )
        # r_final is dead after this factorization (only its SVD travels
        # on); on the fast lane let LAPACK consume it.
        u_new, s_new, _ = economy_svd(
            r_final, overwrite_a=self._workspace is not None
        )
        return u_new, s_new

    # -- streaming driver (paper Listing 2) -----------------------------------
    def initialize(self, A: np.ndarray) -> "ParSVDParallel":
        """Factor the first (local block of the) batch via APMOS."""
        self._finalize_pending()
        A = self._validate_first_batch(A)
        with _obs.span("parsvd.initialize", phase="svd", rank=self.comm.rank):
            self._ulocal, self._singular_values = self.parallel_svd(A)
        self._iteration = 1
        self._n_seen = A.shape[1]
        self._invalidate_modes()
        return self

    def incorporate_data(self, A: np.ndarray) -> "ParSVDParallel":
        """Ingest one more (local block of a) batch via distributed QR.

        On the workspace fast lane (default) the three large per-step
        intermediates — the scaled-modes ‖ batch concatenation, the TSQR
        correction GEMM and the updated local modes — are written with
        ``out=`` into persistent buffers, so a steady-state streaming loop
        allocates no ``(M_i, K + batch)`` arrays at all.

        With ``overlap=True`` the call returns with the step's
        communication in flight (see the class docstring); the previous
        in-flight step, if any, is completed first.
        """
        self._finalize_pending()
        A = self._validate_next_batch(A)
        assert self._ulocal is not None
        assert self._singular_values is not None

        with _obs.span("parsvd.ingest", phase="ingest", rank=self.comm.rank):
            ll = self._scale_concat(A)
        # Every lane shares the pipelined step (identical numbers); the
        # lanes differ only in buffer reuse (workspace) and in *when* the
        # finish phase runs.  With overlap=True the step stays in flight —
        # the merge / reduce / fused reply completes at the next update or
        # result access, overlapping whatever the caller does in between.
        step_cls = (
            PipelinedTreeStep
            if self._qr_variant == "tree"
            else PipelinedGatherStep
        )
        self._pending = step_cls(self.comm, ll, workspace=self._workspace)
        self._pending_posted_t = (
            time.perf_counter() if _obs.state() is not None else None
        )
        if not self._overlap:
            self._finalize_pending()
        self._iteration += 1
        self._n_seen += A.shape[1]
        self._invalidate_modes()
        return self

    def _scale_concat(self, A: np.ndarray) -> np.ndarray:
        """Build ``[ff * U diag(D) | A]`` — fused into a reused F-ordered
        workspace buffer on the fast lane, fresh arrays on the seed path."""
        scale = self._config.ff * self._singular_values
        if self._workspace is None:
            # Seed path: fresh arrays every step (reference semantics).
            ll = self._ulocal * scale[np.newaxis, :]
            return np.concatenate((ll, A), axis=1)
        # Fused scale-and-concat straight into the reusable workspace
        # buffer: ll[:, :k] = ulocal * (ff * s); ll[:, k:] = A.
        # F-ordered so the TSQR's local QR can factor it in place.
        m_i, k = self._ulocal.shape
        dtype = np.result_type(self._ulocal.dtype, A.dtype)
        ll = self._workspace.get("ll", (m_i, k + A.shape[1]), dtype, order="F")
        np.multiply(self._ulocal, scale[np.newaxis, :], out=ll[:, :k])
        ll[:, k:] = A
        return ll

    def _reduce_truncated(
        self, r_final: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``reduce_fn`` of the pipelined steps: the truncated small SVD.

        The leading result is the *combine* factor the steps fold into
        each correction block small-matrices-first, so every rank's whole
        update costs one tall ``(M_i, K+B) x (K+B, K)`` GEMM.
        """
        with _obs.span("parsvd.reduce", phase="svd", rank=self.comm.rank):
            u_new, s_new = self._reduce_r(r_final)
            u_new, s_new, _ = truncate_svd(u_new, s_new, None, self._config.K)
        return u_new, s_new

    def _apply_update(self, q1: np.ndarray, fused: np.ndarray, s_new) -> None:
        """Lift the fused correction through the local Q factor — the one
        tall GEMM of the step, landed in the double-buffered modes."""
        if self._workspace is None:
            self._ulocal = q1 @ fused
        else:
            # Double-buffered update: take a stable destination from the
            # pool (never the buffer q1 lives in), GEMM into it, and
            # recycle the previous generation's block.
            new_u = self._workspace.take(
                "ulocal", (q1.shape[0], fused.shape[1]), q1.dtype
            )
            np.matmul(q1, fused, out=new_u)
            self._workspace.give_back("ulocal", self._ulocal)
            self._ulocal = new_u
        self._singular_values = s_new

    def _finalize_pending(self) -> None:
        """Complete the in-flight pipelined step, if any.

        On rank 0 this is where the step's deferred share runs (stack /
        merge, the truncated small SVD, the fused replies); on other ranks
        it waits for the fused reply.  No-op when nothing is pending, so
        result accessors may call it unconditionally.

        A completion failure (e.g. a dead peer surfacing as a deadlock)
        *poisons* the instance: the posted batch was already counted but
        its update is lost, so every later access re-raises instead of
        quietly serving the stale pre-step factorization.
        """
        with self._pending_lock:
            if self._pending_error is not None:
                raise CommunicatorError(
                    f"a previously posted overlapped step failed to complete "
                    f"({type(self._pending_error).__name__}: "
                    f"{self._pending_error}); the factorization is stale "
                    f"relative to iteration/n_seen — restart from a checkpoint"
                ) from self._pending_error
            if self._pending is None:
                return
            pending, self._pending = self._pending, None
            posted_t, self._pending_posted_t = self._pending_posted_t, None
            st = _obs.state()
            t0 = time.perf_counter() if st is not None else 0.0
            try:
                q1, fused, s_new = pending.finish(self._reduce_truncated)
            except BaseException as exc:
                self._pending_error = exc
                raise
            if st is not None and st.registry is not None:
                # Overlap efficiency: the fraction of the step's wall time
                # (post -> completion) spent blocked completing it.  With
                # perfect overlap finish() returns instantly and the gauge
                # tends to 0; without overlap it tends to 1.
                now = time.perf_counter()
                wait_s = now - t0
                step_s = (now - posted_t) if posted_t is not None else wait_s
                if step_s > 0.0:
                    st.registry.gauge("repro.core.overlap_efficiency").set(
                        wait_s / step_s
                    )
                st.registry.histogram(
                    "repro.core.step_seconds"
                ).observe(step_s)
                st.registry.histogram(
                    "repro.core.finish_seconds"
                ).observe(wait_s)
            self._apply_update(q1, fused, s_new)

    def try_finalize_pending(self) -> bool:
        """Opportunistically complete the in-flight step — the progress
        daemon's hook.

        Non-blocking on both axes: the pending lock is taken with
        ``blocking=False`` (the driver's own thread may be mid-finalize),
        and the step is completed only when its ``advance()`` poll says
        ``finish`` can run without waiting on any peer.  Returns ``True``
        when a step was completed.  A completion *failure* poisons the
        driver exactly as an explicit access would (and re-raises, so the
        daemon can record it).
        """
        if self._pending is None:
            return False
        if not self._pending_lock.acquire(blocking=False):
            return False
        try:
            pending = self._pending
            if pending is None or self._pending_error is not None:
                return False
            advance = getattr(pending, "advance", None)
            if advance is None or not advance():
                return False
            self._finalize_pending()
            return True
        finally:
            self._pending_lock.release()

    @property
    def pending_update(self) -> bool:
        """Whether a pipelined streaming step is still in flight (its
        completion will run on the next update or result access)."""
        return self._pending is not None

    def abort_pending(self) -> None:
        """Drop the in-flight pipelined step without completing it.

        The recovery path (a peer died mid-step; ``Session.run`` is about
        to rebuild the communicator and replay from a checkpoint): the
        step's preposted receives are cancelled and its outbox released,
        so the abandoned attempt neither leaks requests nor warns.  Also
        clears a pending-failure poisoning — the caller is explicitly
        abandoning the stale state, not accessing it.
        """
        with self._pending_lock:
            pending, self._pending = self._pending, None
            self._pending_posted_t = None
            self._pending_error = None
            if pending is not None:
                abort = getattr(pending, "abort", None)
                if abort is not None:
                    abort()

    # -- results layout ---------------------------------------------------------
    @property
    def local_modes(self) -> np.ndarray:
        """This rank's ``(M_i, K)`` block of the global left singular
        vectors (no mode-assembly communication; completes an in-flight
        overlapped step first)."""
        self._require_initialized()
        self._finalize_pending()
        assert self._ulocal is not None
        return self._ulocal

    @property
    def singular_values(self) -> np.ndarray:
        """Current singular values (completes an in-flight overlapped
        step first)."""
        self._require_initialized()
        self._finalize_pending()
        assert self._singular_values is not None
        return self._singular_values

    def _invalidate_modes(self) -> None:
        """Drop the cached gathered modes; the next :attr:`modes` access
        (on all ranks) re-assembles them collectively."""
        self._modes = None
        self._modes_epoch += 1

    @property
    def modes_current(self) -> bool:
        """Whether the cached gathered modes reflect the latest update
        (i.e. the next :attr:`modes` access needs no communication)."""
        return self._modes_synced_epoch == self._modes_epoch

    def assemble_modes(self) -> Optional[np.ndarray]:
        """Assemble the distributed modes per the ``gather`` policy.

        Collective (for ``"bcast"``/``"root"``) on first call after an
        update; afterwards a cached no-op until the next
        ``incorporate_data``.  Returns the assembled array, or ``None`` on
        non-root ranks under the ``"root"`` policy.
        """
        self._require_initialized()
        self._finalize_pending()
        if self.modes_current:
            return self._modes
        assert self._ulocal is not None
        if self._gather == "none":
            # Documented alias of the local block: same lifetime caveats
            # as :attr:`local_modes` (workspace double buffering).
            self._modes = self._ulocal
        else:
            stacked = self.comm.gatherv_rows(self._ulocal, root=0)
            if (
                stacked is not None
                and self._workspace is not None
                and np.shares_memory(stacked, self._ulocal)
            ):
                # Single-rank backends return the send buffer aliased;
                # with the workspace recycling _ulocal every other step,
                # an assembled-modes result must not share that storage
                # (gathered modes are a stable snapshot on every backend).
                stacked = np.array(stacked)
            if self._gather == "bcast":
                stacked = self.comm.bcast(stacked, root=0)
            self._modes = stacked
        self._modes_synced_epoch = self._modes_epoch
        return self._modes

    @property
    def modes(self) -> np.ndarray:
        """Global modes per the gather policy (see class docstring).

        Collective when the cache is stale: every rank must read it (or
        call :meth:`assemble_modes`) to complete the gather.
        """
        self._require_initialized()
        self.assemble_modes()
        if self._modes is None:
            raise ShapeError(
                f"rank {self.comm.rank} does not hold the gathered modes "
                f"(gather policy {self._gather!r}); use local_modes"
            )
        return self._modes

    # -- checkpoint / restart ---------------------------------------------
    def save_checkpoint(
        self,
        path,
        gathered: bool = False,
        run_config: Optional[RunConfig] = None,
    ) -> str:
        """Checkpoint the streaming state; returns the path written.

        With ``gathered=False`` (default) every rank calls this with the
        *same* base path and writes its own shard
        (``<stem>.rank<i>.npz``) holding the local mode block; a restart
        must then use the same rank count.

        With ``gathered=True`` the call is **collective**: the global mode
        matrix is assembled at rank 0 (via ``gatherv_rows``, independent of
        the ``gather`` policy) and written as one single file
        (``kind="gathered"``).  Such a checkpoint restarts at *any* rank
        count — see :meth:`from_checkpoint` — and is what
        :class:`~repro.serving.ModeBaseStore` ingests.

        ``run_config`` embeds the typed :class:`~repro.config.RunConfig`
        into the file so :meth:`repro.api.Session.resume` can restore the
        backend and stream settings too (the session passes its own).
        """
        self._require_initialized()
        self._finalize_pending()
        assert self._ulocal is not None
        if gathered:
            stacked = self.comm.gatherv_rows(self._ulocal, root=0)
            out = normalize_checkpoint_path(path)
            if self.comm.rank == 0:
                write_checkpoint(
                    out,
                    self._config,
                    stacked,
                    self.singular_values,
                    self._iteration,
                    self._n_seen,
                    kind="gathered",
                    rank=0,
                    nranks=self.comm.size,
                    qr_variant=self._qr_variant,
                    gather=self._gather,
                    apmos_group_size=self._apmos_group_size,
                    run_config=run_config,
                )
            # Exit barrier: gatherv_rows returns immediately on non-root
            # ranks (buffered sends), so without this a rank could observe
            # a missing/partial file that rank 0 is still writing.
            self.comm.barrier()
            return str(out)
        shard = rank_checkpoint_path(path, self.comm.rank)
        out = write_checkpoint(
            shard,
            self._config,
            self._ulocal,
            self.singular_values,
            self._iteration,
            self._n_seen,
            kind="parallel",
            rank=self.comm.rank,
            nranks=self.comm.size,
            qr_variant=self._qr_variant,
            gather=self._gather,
            apmos_group_size=self._apmos_group_size,
            run_config=run_config,
        )
        return str(out)

    def export_to_store(self, store, name: str) -> int:
        """Publish the current basis into a serving store (collective).

        Assembles the global modes at rank 0, publishes them as a new
        version of ``name`` in ``store`` (a
        :class:`~repro.serving.ModeBaseStore` or a path to one), and
        broadcasts the assigned version so every rank returns it.
        """
        self._require_initialized()
        self._finalize_pending()
        assert self._ulocal is not None
        stacked = self.comm.gatherv_rows(self._ulocal, root=0)
        version: Optional[int] = None
        if self.comm.rank == 0:
            from ..serving.store import ModeBaseStore

            if not isinstance(store, ModeBaseStore):
                store = ModeBaseStore(store)
            version = store.publish(
                name,
                stacked,
                self.singular_values,
                config=self._config,
                iteration=self._iteration,
                n_seen=self._n_seen,
            )
        return self.comm.bcast(version, root=0)

    @classmethod
    def from_checkpoint(
        cls,
        comm,
        path,
        qr_variant: Optional[str] = None,
        gather: Optional[str] = None,
        solver: Optional[SolverConfig] = None,
    ) -> "ParSVDParallel":
        """Rebuild this rank's instance from its shard of a checkpoint.

        ``qr_variant``/``gather`` default to the values recorded at save
        time (so a restart continues with the saved configuration,
        including ``apmos_group_size``); pass them explicitly to override.
        ``solver`` overrides the whole configuration at once (a full
        :class:`~repro.config.SolverConfig`, e.g. the one embedded in the
        checkpoint's :class:`~repro.config.RunConfig` payload — how
        :meth:`repro.api.Session.resume` also restores ``workspace``/
        ``overlap``); it is mutually exclusive with the per-field
        overrides.

        Two layouts restart:

        * a **gathered** single file (``save_checkpoint(...,
          gathered=True)``): if ``path`` itself names a ``kind="gathered"``
          checkpoint, each rank takes its canonical
          :func:`~repro.utils.partition.block_partition` row block of the
          stored global modes — any rank count works;
        * otherwise the per-rank **shards**: the restart rank count must
          equal the checkpoint's (the shards partition the global modes);
          a mismatch raises :class:`~repro.exceptions.DataFormatError`.
        """
        if solver is not None and (qr_variant is not None or gather is not None):
            raise ConfigurationError(
                "pass either solver= or the qr_variant/gather overrides, "
                "not both"
            )
        gathered_file = normalize_checkpoint_path(path)
        shard = rank_checkpoint_path(path, comm.rank)
        gathered_state: Optional[dict] = None
        if gathered_file.exists():
            # The base path may legitimately hold something else (e.g. a
            # save_results archive sharing the stem with per-rank shards);
            # only a readable kind="gathered" checkpoint selects the
            # single-file restart, otherwise fall back to the shards.
            try:
                candidate = read_checkpoint(gathered_file)
            except DataFormatError:
                candidate = None
            if candidate is not None and candidate["kind"] == "gathered":
                gathered_state = candidate
            elif not shard.exists():
                if candidate is None:
                    raise DataFormatError(
                        f"{gathered_file}: not a restartable checkpoint and "
                        f"no per-rank shard {shard} exists"
                    )
                raise DataFormatError(
                    f"{gathered_file}: checkpoint kind "
                    f"{candidate['kind']!r} is not 'gathered'; per-rank "
                    f"restarts load '<stem>.rank<i>.npz' shards"
                )
        if gathered_state is not None:
            state = gathered_state
            global_modes = state["modes"]
            part = block_partition(global_modes.shape[0], comm.size)
            svd = cls(comm, solver=cls._restored_solver(state, qr_variant, gather, solver))
            local = np.array(global_modes[part.slice_of(comm.rank), :])
            svd._ulocal = local
            svd._singular_values = state["singular_values"]
            svd._iteration = state["iteration"]
            svd._n_seen = state["n_seen"]
            svd._n_dof = local.shape[0]
            svd._invalidate_modes()
            return svd
        state = read_checkpoint(shard)
        if state["kind"] != "parallel":
            raise DataFormatError(
                f"{shard}: checkpoint kind {state['kind']!r} is not 'parallel'"
            )
        if state["nranks"] != comm.size:
            raise DataFormatError(
                f"{shard}: checkpoint was taken at {state['nranks']} ranks, "
                f"restart has {comm.size}"
            )
        if state["rank"] != comm.rank:
            raise DataFormatError(
                f"{shard}: shard belongs to rank {state['rank']}, "
                f"loaded by rank {comm.rank}"
            )
        svd = cls(comm, solver=cls._restored_solver(state, qr_variant, gather, solver))
        svd._ulocal = state["modes"]
        svd._singular_values = state["singular_values"]
        svd._iteration = state["iteration"]
        svd._n_seen = state["n_seen"]
        svd._n_dof = state["modes"].shape[0]
        svd._invalidate_modes()
        return svd

    @staticmethod
    def _restored_solver(
        state: dict,
        qr_variant: Optional[str],
        gather: Optional[str],
        solver: Optional[SolverConfig],
    ) -> SolverConfig:
        """The SolverConfig a restart runs with: an explicit override, or
        the checkpoint's recorded algorithm + run options."""
        if solver is not None:
            return solver
        return SolverConfig.from_svd_config(
            state["config"],
            qr_variant=qr_variant or state["qr_variant"],
            gather=gather or state["gather"],
            apmos_group_size=state["apmos_group_size"],
        )
