"""Distributed tall-skinny QR (paper Listing 4 and Benson et al. 2013).

The streaming update of the parallel class needs a QR factorization of a
row-block-distributed tall-skinny matrix ``A`` (rows = grid points spread
over ranks, columns = ``K + batch`` ≪ rows).  Two variants are provided:

``tsqr_gather``
    The paper's scheme (Listing 4): every rank takes a local QR, the small
    ``R`` factors are gathered and stacked at rank 0, a second QR of the
    stack yields the global ``R`` and a correction factor that rank 0 slices
    and sends back to each rank.  Simple, but rank 0 handles ``p * n x n``.

``tsqr_tree``
    The communication-optimal binary-reduction TSQR: pairs of ranks merge
    their ``R`` factors up a tree (``log2 p`` rounds), then the per-level
    correction factors are pushed back down.  Same result (both are
    canonicalised to ``diag(R) >= 0``), lower critical-path volume — the
    A5 ablation bench contrasts the two.

Both return ``(Q_local, R)`` with ``Q_local`` the caller's row block of the
global orthonormal factor and ``R`` replicated on every rank.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..exceptions import ShapeError
from ..utils.linalg import as_floating, qr_positive

__all__ = ["tsqr_gather", "tsqr_tree"]

#: Base of the p2p tag range used by the gather variant (mirrors the
#: paper's ``tag=rank+10``).
_TAG_BASE = 10
#: Tag range used by the tree variant (distinct from the gather variant so
#: both can run on one communicator in sequence).
_TAG_TREE_UP = 200
_TAG_TREE_DOWN = 300


def _validate_local(a_local: np.ndarray) -> np.ndarray:
    a_local = as_floating(a_local, "local block")
    if a_local.ndim != 2:
        raise ShapeError(f"local block must be 2-D, got ndim={a_local.ndim}")
    return a_local


def tsqr_gather(
    comm, a_local: np.ndarray, workspace=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather-based TSQR (the paper's ``parallel_qr`` communication pattern).

    Parameters
    ----------
    comm:
        Communicator.
    a_local:
        ``(M_i, n)`` local row block, all ranks agreeing on ``n`` and with
        ``sum_i M_i >= n`` for a full-rank result.
    workspace:
        Optional :class:`~repro.core.workspace.Workspace` enabling the
        allocation-free fast lane.  Passing it asserts that ``a_local`` is
        caller-owned *scratch*: rank 0 stacks the gathered ``R`` factors
        into a reused workspace buffer (no ``np.concatenate``), the stacked
        refactorization may destroy that buffer (``overwrite_a``), and the
        returned ``q_local`` is written **in place over** ``a_local``
        (whose contents are no longer needed once the local QR is taken).

    Returns
    -------
    (q_local, r):
        ``q_local`` — ``(M_i, n)`` row block of the global ``Q``;
        ``r`` — the global ``(n, n)`` upper-triangular factor, replicated.
    """
    a_local = _validate_local(a_local)
    n = a_local.shape[1]

    # Local QR; canonical signs so the stacked reduction is deterministic.
    # On the fast lane the input is declared scratch, so LAPACK may factor
    # it in place (zero-copy when the caller hands an F-ordered workspace
    # buffer: Q then aliases the input storage).
    scratch_input = workspace is not None and a_local.flags.writeable
    q1, r1 = qr_positive(a_local, overwrite_a=scratch_input)
    rows_local = r1.shape[0]

    r_stack = comm.gather(r1, root=0)
    if comm.rank == 0:
        counts = [blk.shape[0] for blk in r_stack]
        total = sum(counts)
        if workspace is None:
            stacked = np.empty((total, n), dtype=r1.dtype)
        else:
            # F-ordered so the overwrite_a refactorization below is truly
            # in place (LAPACK copies non-Fortran input regardless).
            stacked = workspace.get(
                "tsqr_rstack", (total, n), r1.dtype, order="F"
            )
        offsets = np.cumsum([0] + counts)
        for peer, blk in enumerate(r_stack):
            stacked[offsets[peer] : offsets[peer + 1]] = blk
        # The stack buffer is scratch either way once the factors are out;
        # with a workspace, let LAPACK reuse it instead of copying.
        q2, r_final = qr_positive(stacked, overwrite_a=workspace is not None)
        # Slice the correction factor by each rank's R row count and ship it.
        # (Counts can differ when a rank owns fewer rows than columns.)
        for peer in range(1, comm.size):
            comm.send(
                np.ascontiguousarray(q2[offsets[peer] : offsets[peer + 1]]),
                dest=peer,
                tag=_TAG_BASE + peer,
            )
        q2_local = q2[offsets[0] : offsets[1]]
    else:
        r_final = None
        q2_local = comm.recv(source=0, tag=_TAG_BASE + comm.rank)
    r_final = comm.bcast(r_final, root=0)

    if workspace is not None:
        # The correction GEMM lands in a persistent buffer (q1 may alias
        # the spent input, so the output cannot go there).
        q_out = workspace.get(
            "tsqr_q", (q1.shape[0], q2_local.shape[1]), q1.dtype
        )
        q_local = np.matmul(q1, q2_local, out=q_out)
    else:
        q_local = q1 @ q2_local
    if q_local.shape[1] != n:  # pragma: no cover - defensive
        raise ShapeError(
            f"TSQR produced {q_local.shape[1]} columns, expected {n}"
        )
    return q_local, r_final


def tsqr_tree(comm, a_local: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Binary-reduction TSQR (Benson, Gleich & Demmel 2013).

    Communication structure: ``ceil(log2 p)`` rounds.  In round ``d`` the
    rank with the set ``2^d`` bit sends its current ``R`` to its partner
    (``rank - 2^d``), which stacks the two ``R`` factors, refactors, and
    keeps the product chain of correction blocks.  The downsweep then sends
    each child its slice of the correction factor so every rank can update
    its local ``Q``.

    Results match :func:`tsqr_gather` to round-off because both are
    canonicalised (``diag(R) >= 0``), which the tests assert.
    """
    a_local = _validate_local(a_local)
    n = a_local.shape[1]
    rank, size = comm.rank, comm.size

    q_factors = []  # correction chain, innermost (local) first
    q_local, r_current = qr_positive(a_local)

    # --- upsweep: binary reduction of R factors -------------------------
    depth = 0
    stride = 1
    active = True
    merge_meta = []  # (partner, my_rows, partner_rows) per merge this rank did
    while stride < size:
        if active:
            partner = rank ^ stride
            if partner < size:
                if rank & stride:
                    comm.send(r_current, dest=partner, tag=_TAG_TREE_UP + depth)
                    active = False
                else:
                    r_partner = comm.recv(
                        source=partner, tag=_TAG_TREE_UP + depth
                    )
                    my_rows = r_current.shape[0]
                    stacked = np.concatenate((r_current, r_partner), axis=0)
                    q_merge, r_current = qr_positive(stacked)
                    merge_meta.append((partner, my_rows, r_partner.shape[0]))
                    q_factors.append(q_merge)
        stride <<= 1
        depth += 1

    # --- broadcast final R (owned by rank 0 after the reduction) -----------
    r_final = comm.bcast(r_current if rank == 0 else None, root=0)

    # --- downsweep: push correction slices back down the tree --------------
    # Each rank accumulates `correction`, the matrix C such that its block of
    # the global Q is q_local @ C.  Rank 0 starts with the identity of the
    # final R's row count; merges are unwound in reverse order.
    if rank == 0:
        correction = np.eye(r_final.shape[0], dtype=r_final.dtype)
    else:
        # Receive from the partner that absorbed this rank's R.
        correction = comm.recv(source=rank & ~(stride_of_absorption(rank)), tag=_TAG_TREE_DOWN + level_of_absorption(rank))

    for q_merge, (partner, my_rows, partner_rows) in zip(
        reversed(q_factors), reversed(merge_meta)
    ):
        combined = q_merge @ correction
        comm.send(
            np.ascontiguousarray(combined[my_rows : my_rows + partner_rows]),
            dest=partner,
            tag=_TAG_TREE_DOWN + level_of_absorption(partner),
        )
        correction = combined[:my_rows]

    q_local = q_local @ correction
    if q_local.shape[1] != n:  # pragma: no cover - defensive
        raise ShapeError(
            f"tree TSQR produced {q_local.shape[1]} columns, expected {n}"
        )
    return q_local, r_final


def level_of_absorption(rank: int) -> int:
    """Tree level at which ``rank`` sent its R upward (index of its lowest
    set bit); rank 0 never sends."""
    if rank == 0:
        raise ValueError("rank 0 is the reduction root and is never absorbed")
    return (rank & -rank).bit_length() - 1


def stride_of_absorption(rank: int) -> int:
    """Stride (``2^level``) at which ``rank`` was absorbed."""
    if rank == 0:
        raise ValueError("rank 0 is the reduction root and is never absorbed")
    return rank & -rank
