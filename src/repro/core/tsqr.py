"""Distributed tall-skinny QR (paper Listing 4 and Benson et al. 2013).

The streaming update of the parallel class needs a QR factorization of a
row-block-distributed tall-skinny matrix ``A`` (rows = grid points spread
over ranks, columns = ``K + batch`` ≪ rows).  Two variants are provided:

``tsqr_gather``
    The paper's scheme (Listing 4): every rank takes a local QR, the small
    ``R`` factors are gathered and stacked at rank 0, a second QR of the
    stack yields the global ``R`` and a correction factor that rank 0 slices
    and sends back to each rank.  Simple, but rank 0 handles ``p * n x n``.

``tsqr_tree``
    The communication-optimal binary-reduction TSQR: pairs of ranks merge
    their ``R`` factors up a tree (``log2 p`` rounds), then the per-level
    correction factors are pushed back down.  Same result (both are
    canonicalised to ``diag(R) >= 0``), lower critical-path volume — the
    A5 ablation bench contrasts the two.

Both return ``(Q_local, R)`` with ``Q_local`` the caller's row block of the
global orthonormal factor and ``R`` replicated on every rank.

Pipelined steps
---------------
:class:`PipelinedGatherStep` / :class:`PipelinedTreeStep` split one
TSQR-plus-reduce step into a *post* phase (receives preposted before the
local QR, local factor taken, small ``R`` shipped) and a *finish* phase
(merge/refactor, a root-side ``reduce_fn(R)`` — e.g. the small SVD of the
streaming update — and a **fused** reply carrying each rank's correction
block together with ``reduce_fn``'s results in a single message).
Between ``post`` and ``finish`` the caller is free to do unrelated work
(ingest the next batch, prefetch IO) while the collectives are in flight;
:class:`~repro.core.parallel.ParSVDParallel`'s ``overlap=True`` streaming
update is built on these.  The numbers are identical to the blocking
variants — same factorizations of the same values in the same order.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

from ..exceptions import ShapeError
from ..obs import runtime as _obs
from ..utils.linalg import as_floating, qr_positive

__all__ = [
    "PipelinedGatherStep",
    "PipelinedTreeStep",
    "tsqr_gather",
    "tsqr_tree",
]

#: Base of the p2p tag range used by the gather variant (mirrors the
#: paper's ``tag=rank+10``).
_TAG_BASE = 10
#: Tag range used by the tree variant (distinct from the gather variant so
#: both can run on one communicator in sequence).
_TAG_TREE_UP = 200
_TAG_TREE_DOWN = 300
#: Tag ranges of the pipelined steps (distinct from the blocking variants
#: so posted traffic can sit in mailboxes across a blocking call).
_TAG_PIPE_UP = 400
_TAG_PIPE_DOWN = 500
_TAG_PTREE_UP = 600
_TAG_PTREE_DOWN = 700


def _validate_local(a_local: np.ndarray) -> np.ndarray:
    a_local = as_floating(a_local, "local block")
    if a_local.ndim != 2:
        raise ShapeError(f"local block must be 2-D, got ndim={a_local.ndim}")
    return a_local


def _stack_and_refactor(blocks, n: int, workspace):
    """Rank-0 core of the gather variant: stack the per-rank ``R`` factors
    and take the canonical QR of the stack.

    With a workspace the stack lands in a reused F-ordered buffer that
    LAPACK may refactor in place (it copies non-Fortran input regardless);
    the buffer is scratch either way once the factors are out.  Returns
    ``(q2, r_final, offsets)`` with ``offsets`` delimiting each rank's
    rows of ``q2`` (counts can differ when a rank owns fewer rows than
    columns).
    """
    counts = [blk.shape[0] for blk in blocks]
    total = sum(counts)
    dtype = blocks[0].dtype
    if workspace is None:
        stacked = np.empty((total, n), dtype=dtype)
    else:
        stacked = workspace.get("tsqr_rstack", (total, n), dtype, order="F")
    offsets = np.cumsum([0] + counts)
    for peer, blk in enumerate(blocks):
        stacked[offsets[peer] : offsets[peer + 1]] = blk
    q2, r_final = qr_positive(stacked, overwrite_a=workspace is not None)
    return q2, r_final, offsets


def tsqr_gather(
    comm, a_local: np.ndarray, workspace=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather-based TSQR (the paper's ``parallel_qr`` communication pattern).

    Parameters
    ----------
    comm:
        Communicator.
    a_local:
        ``(M_i, n)`` local row block, all ranks agreeing on ``n`` and with
        ``sum_i M_i >= n`` for a full-rank result.
    workspace:
        Optional :class:`~repro.core.workspace.Workspace` enabling the
        allocation-free fast lane.  Passing it asserts that ``a_local`` is
        caller-owned *scratch*: rank 0 stacks the gathered ``R`` factors
        into a reused workspace buffer (no ``np.concatenate``), the stacked
        refactorization may destroy that buffer (``overwrite_a``), and the
        returned ``q_local`` is written **in place over** ``a_local``
        (whose contents are no longer needed once the local QR is taken).

    Returns
    -------
    (q_local, r):
        ``q_local`` — ``(M_i, n)`` row block of the global ``Q``;
        ``r`` — the global ``(n, n)`` upper-triangular factor, replicated.
    """
    a_local = _validate_local(a_local)
    n = a_local.shape[1]

    # Local QR; canonical signs so the stacked reduction is deterministic.
    # On the fast lane the input is declared scratch, so LAPACK may factor
    # it in place (zero-copy when the caller hands an F-ordered workspace
    # buffer: Q then aliases the input storage).
    scratch_input = workspace is not None and a_local.flags.writeable
    q1, r1 = qr_positive(a_local, overwrite_a=scratch_input)
    rows_local = r1.shape[0]

    r_stack = comm.gather(r1, root=0)
    if comm.rank == 0:
        q2, r_final, offsets = _stack_and_refactor(r_stack, n, workspace)
        # Slice the correction factor by each rank's R row count and ship it.
        # (Counts can differ when a rank owns fewer rows than columns.)
        for peer in range(1, comm.size):
            comm.send(
                np.ascontiguousarray(q2[offsets[peer] : offsets[peer + 1]]),
                dest=peer,
                tag=_TAG_BASE + peer,
            )
        q2_local = q2[offsets[0] : offsets[1]]
    else:
        r_final = None
        q2_local = comm.recv(source=0, tag=_TAG_BASE + comm.rank)
    r_final = comm.bcast(r_final, root=0)

    if workspace is not None:
        # The correction GEMM lands in a persistent buffer (q1 may alias
        # the spent input, so the output cannot go there).
        q_out = workspace.get(
            "tsqr_q", (q1.shape[0], q2_local.shape[1]), q1.dtype
        )
        q_local = np.matmul(q1, q2_local, out=q_out)
    else:
        q_local = q1 @ q2_local
    if q_local.shape[1] != n:  # pragma: no cover - defensive
        raise ShapeError(
            f"TSQR produced {q_local.shape[1]} columns, expected {n}"
        )
    return q_local, r_final


def _tree_recv_schedule(rank: int, size: int, comm, tag_base: int) -> Dict[int, object]:
    """Prepost one receive per upsweep level at which ``rank`` will merge.

    The binary-reduction schedule is static: at level ``d`` (stride
    ``2^d``) a still-active rank with the ``2^d`` bit clear absorbs
    ``rank + 2^d`` (when that partner exists).  Posting the receives
    before any local compute is the MPI prepost idiom — the partner's
    ``R`` lands while this rank is busy factoring its own block.
    """
    requests: Dict[int, object] = {}
    stride, depth = 1, 0
    while stride < size:
        if rank % stride == 0 and not (rank & stride) and rank + stride < size:
            requests[depth] = comm.irecv(rank + stride, tag_base + depth)
        stride <<= 1
        depth += 1
    return requests


def _tree_upsweep(
    comm,
    r_current: np.ndarray,
    up_requests: Dict[int, object],
    workspace,
    n: int,
    tag_base: int,
    skip_first_send: bool = False,
):
    """Run the binary reduction of R factors (receives preposted).

    Returns ``(r_current, q_factors, merge_meta)`` — the reduced factor
    (final global ``R`` on rank 0), the correction chain and its metadata.
    With a workspace, each level's stacked R pair lands in a pooled
    F-ordered buffer that LAPACK may refactor in place.
    """
    rank, size = comm.rank, comm.size
    q_factors = []  # correction chain, innermost (local) first
    merge_meta = []  # (partner, my_rows, partner_rows) per merge
    stride, depth = 1, 0
    active = True
    while stride < size:
        if active:
            partner = rank ^ stride
            if partner < size:
                if rank & stride:
                    if not (skip_first_send and depth == 0):
                        # Blocking send: the partner preposted this level's
                        # receive, and a completed send needs no buffer-
                        # lifetime management on any backend.
                        comm.send(r_current, dest=partner, tag=tag_base + depth)
                    active = False
                else:
                    with _obs.span(
                        "tsqr.tree_wait", phase="wait", rank=rank
                    ):
                        r_partner = np.asarray(up_requests[depth].wait())
                    my_rows = r_current.shape[0]
                    partner_rows = r_partner.shape[0]
                    if workspace is None:
                        stacked = np.concatenate(
                            (r_current, r_partner), axis=0
                        )
                    else:
                        # F-ordered so the in-place refactorization below
                        # needs no LAPACK-side copy.
                        stacked = workspace.get(
                            f"tree_stack_{depth}",
                            (my_rows + partner_rows, n),
                            np.result_type(r_current.dtype, r_partner.dtype),
                            order="F",
                        )
                        stacked[:my_rows] = r_current
                        stacked[my_rows:] = r_partner
                    q_merge, r_current = qr_positive(
                        stacked, overwrite_a=workspace is not None
                    )
                    merge_meta.append((partner, my_rows, partner_rows))
                    q_factors.append(q_merge)
        stride <<= 1
        depth += 1
    return r_current, q_factors, merge_meta


def tsqr_tree(
    comm, a_local: np.ndarray, workspace=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Binary-reduction TSQR (Benson, Gleich & Demmel 2013).

    Communication structure: ``ceil(log2 p)`` rounds.  In round ``d`` the
    rank with the set ``2^d`` bit sends its current ``R`` to its partner
    (``rank - 2^d``), which stacks the two ``R`` factors, refactors, and
    keeps the product chain of correction blocks.  The downsweep then sends
    each child its slice of the correction factor so every rank can update
    its local ``Q``.

    Every receive in this rank's static schedule — the per-level partner
    ``R`` factors and (non-root) the downsweep correction — is posted
    *before* the local QR, so partners' traffic lands in the mailbox while
    this rank factors its own block.  ``workspace`` (as in
    :func:`tsqr_gather`) declares ``a_local`` caller-owned scratch and
    pools the per-level stacked ``R`` pairs plus the final correction
    GEMM's output.

    Results match :func:`tsqr_gather` to round-off because both are
    canonicalised (``diag(R) >= 0``), which the tests assert.
    """
    a_local = _validate_local(a_local)
    n = a_local.shape[1]
    rank, size = comm.rank, comm.size

    # --- prepost the whole receive schedule, then factor locally ----------
    up_requests = _tree_recv_schedule(rank, size, comm, _TAG_TREE_UP)
    if rank != 0 and size > 1:
        down_request = comm.irecv(
            rank & ~stride_of_absorption(rank),
            _TAG_TREE_DOWN + level_of_absorption(rank),
        )
    scratch = workspace is not None and a_local.flags.writeable
    q_local, r_current = qr_positive(a_local, overwrite_a=scratch)

    # --- upsweep: binary reduction of R factors -------------------------
    r_current, q_factors, merge_meta = _tree_upsweep(
        comm, r_current, up_requests, workspace, n, _TAG_TREE_UP
    )

    # --- broadcast final R (owned by rank 0 after the reduction) -----------
    r_final = comm.bcast(r_current if rank == 0 else None, root=0)

    # --- downsweep: push correction slices back down the tree --------------
    # Each rank accumulates `correction`, the matrix C such that its block of
    # the global Q is q_local @ C.  Rank 0 starts with the identity of the
    # final R's row count; merges are unwound in reverse order.
    if rank == 0:
        correction = np.eye(r_final.shape[0], dtype=r_final.dtype)
    else:
        # Receive from the partner that absorbed this rank's R (preposted).
        with _obs.span("tsqr.down_wait", phase="wait", rank=rank):
            correction = down_request.wait()

    for q_merge, (partner, my_rows, partner_rows) in zip(
        reversed(q_factors), reversed(merge_meta)
    ):
        combined = q_merge @ correction
        comm.send(
            np.ascontiguousarray(combined[my_rows : my_rows + partner_rows]),
            dest=partner,
            tag=_TAG_TREE_DOWN + level_of_absorption(partner),
        )
        correction = combined[:my_rows]

    if workspace is not None:
        # q_local may alias the spent input buffer; land the correction
        # GEMM in a stable pooled destination instead.
        q_out = workspace.get(
            "tsqr_q", (q_local.shape[0], correction.shape[1]), q_local.dtype
        )
        q_local = np.matmul(q_local, correction, out=q_out)
    else:
        q_local = q_local @ correction
    if q_local.shape[1] != n:  # pragma: no cover - defensive
        raise ShapeError(
            f"tree TSQR produced {q_local.shape[1]} columns, expected {n}"
        )
    return q_local, r_final


def _abort_request(request: object) -> None:
    """Best-effort cancel of one in-flight request during an abort/drain.

    Receives that already completed (or foreign request objects without a
    ``cancel``) are simply left alone — abort is about releasing the
    *pending* ones so a crashed step never trips the leak detector or
    emits un-awaited ResourceWarnings."""
    cancel = getattr(request, "cancel", None)
    if cancel is None:
        return
    try:
        cancel()
    except Exception:  # already done / backend-specific refusal
        pass


def _frozen_copy(block: np.ndarray) -> np.ndarray:
    """An owning, read-only snapshot of ``block`` — the communicator's
    zero-copy lane ships such snapshots without a second copy, even
    inside tuple payloads.  A fresh buffer-owning input (e.g. a GEMM
    product) is frozen in place; views and writable borrows are copied.
    """
    if block.base is None and block.flags.owndata and block.flags.writeable:
        block.flags.writeable = False
        return block
    snapshot = np.array(block, copy=True)
    snapshot.flags.writeable = False
    return snapshot


class PipelinedGatherStep:
    """One in-flight gather-variant TSQR + reduce step.

    Construction is the *post* phase: the root preposts one receive per
    peer **before** its local QR, every rank factors its block (in place
    on the workspace fast lane), and non-roots ship their small ``R`` and
    prepost the receive for the fused reply — then return to the caller
    with the step in flight.

    :meth:`finish` completes the step: the root stacks the gathered ``R``
    factors (pooled buffer), refactors, runs ``reduce_fn(R_global) ->
    (combine, *rest)`` — e.g. the streaming update's truncated small SVD
    — and sends each peer its correction block **pre-multiplied by**
    ``combine`` together with ``rest`` in one fused message.  Three
    envelopes per peer pair per step collapse into one, the blocking
    path's separate ``R``/result broadcasts disappear, and the
    correction-combine product is taken *small-matrices-first*: each rank
    later needs only one tall GEMM ``q1 @ (correction @ combine)``
    instead of ``(q1 @ correction) @ combine`` — a large cut of the
    per-step FLOPs when ``combine`` is a truncation.

    Returns ``(q1, fused_correction, *rest)``: the caller owns the final
    ``q1 @ fused_correction`` product (and its destination buffer).
    """

    def __init__(self, comm, a_local: np.ndarray, workspace=None) -> None:
        a_local = _validate_local(a_local)
        self._comm = comm
        self._workspace = workspace
        self._n = a_local.shape[1]
        if comm.rank == 0 and comm.size > 1:
            # Preposted before the local QR (the prepost idiom).
            self._up = [
                comm.irecv(peer, _TAG_PIPE_UP)
                for peer in range(1, comm.size)
            ]
        scratch = workspace is not None and a_local.flags.writeable
        with _obs.span("tsqr.local_qr", phase="qr", rank=comm.rank):
            self._q1, self._r1 = qr_positive(a_local, overwrite_a=scratch)
        # In-flight sends are retained until finish() so backends whose
        # send requests own the wire buffer (mpi4py pickle mode) cannot
        # have it collected mid-flight.
        self._outbox = []
        if comm.rank != 0:
            self._outbox.append(comm.isend(self._r1, 0, _TAG_PIPE_UP))
            self._reply = comm.irecv(0, _TAG_PIPE_DOWN)

    def advance(self) -> bool:
        """Non-blocking progress poll: ``True`` when :meth:`finish` can
        run without waiting on any peer.

        The root is ready once every preposted per-peer ``R`` receive has
        arrived (``test()`` banks the payload, so the later ``wait`` in
        ``finish`` is instant); a non-root is ready once the fused reply
        landed.  The progress daemon calls this with backoff so
        ``overlap=True`` steps complete in the background.
        """
        comm = self._comm
        if comm.rank == 0:
            if comm.size == 1:
                return True
            return all(request.test()[0] for request in self._up)
        return bool(self._reply.test()[0])

    def finish(self, reduce_fn: Callable[[np.ndarray], tuple]) -> tuple:
        """Complete the step; ``reduce_fn`` runs on rank 0 only."""
        with _obs.span(
            "tsqr.finish", phase="tsqr_comm", rank=self._comm.rank
        ):
            return self._finish(reduce_fn)

    def _finish(self, reduce_fn: Callable[[np.ndarray], tuple]) -> tuple:
        comm, workspace, n = self._comm, self._workspace, self._n
        if comm.rank == 0:
            blocks = [self._r1]
            if comm.size > 1:
                with _obs.span("tsqr.gather_wait", phase="wait", rank=0):
                    blocks.extend(
                        np.asarray(req.wait()) for req in self._up
                    )
            q2, r_final, offsets = _stack_and_refactor(blocks, n, workspace)
            reduced = tuple(reduce_fn(r_final))
            combine, rest = reduced[0], tuple(reduced[1:])
            rest_shared = tuple(
                _frozen_copy(item) if isinstance(item, np.ndarray) else item
                for item in rest
            )
            for peer in range(1, comm.size):
                # Small-first fuse at the root: the shipped block is the
                # peer's whole remaining update except its one tall GEMM.
                piece = _frozen_copy(
                    q2[offsets[peer] : offsets[peer + 1]] @ combine
                )
                self._outbox.append(
                    comm.isend((piece,) + rest_shared, peer, _TAG_PIPE_DOWN)
                )
            fused = q2[offsets[0] : offsets[1]] @ combine
        else:
            with _obs.span(
                "tsqr.reply_wait", phase="wait", rank=comm.rank
            ):
                payload = self._reply.wait()
            fused = payload[0]
            rest = tuple(payload[1:])
        # Drain the outbox: the peers' matching receives are preposted, so
        # these waits are instant once the step's exchange has happened.
        for request in self._outbox:
            request.wait()
        self._outbox = []
        return (self._q1, fused) + rest

    def abort(self) -> None:
        """Abandon the in-flight step: cancel pending receives, drop the
        outbox.  Called on the recovery path (a peer died mid-step) —
        afterwards the step must not be finished."""
        for request in getattr(self, "_up", []) or []:
            _abort_request(request)
        self._up = []
        reply = getattr(self, "_reply", None)
        if reply is not None:
            _abort_request(reply)
            self._reply = None
        for request in getattr(self, "_outbox", []):
            _abort_request(request)
        self._outbox = []


class PipelinedTreeStep:
    """One in-flight tree-variant TSQR + reduce step.

    Post phase: the full static receive schedule (per-level upsweep
    partners plus the downsweep correction) is preposted before the local
    QR; leaf ranks absorbed at level 0 ship their ``R`` immediately so it
    travels while their partner is still factoring.  :meth:`finish` runs
    the binary reduction, ``reduce_fn(R_global) -> (combine, *rest)`` at
    the root, and a **fused downsweep**: each correction slice travels
    together with ``reduce_fn``'s results, each merging rank forwarding
    them to the partners it absorbed — no separate ``R``/result
    broadcasts at all.  The downsweep keeps full-width corrections (the
    children's chains need them); the ``combine`` fold happens
    small-matrices-first at the leaves, so — like the gather step — each
    rank performs exactly one tall GEMM, owned by the caller.  Returns
    ``(q1, fused_correction, *rest)``.
    """

    def __init__(self, comm, a_local: np.ndarray, workspace=None) -> None:
        a_local = _validate_local(a_local)
        self._comm = comm
        self._workspace = workspace
        self._n = a_local.shape[1]
        rank, size = comm.rank, comm.size
        self._up = _tree_recv_schedule(rank, size, comm, _TAG_PTREE_UP)
        if rank != 0 and size > 1:
            self._down = comm.irecv(
                rank & ~stride_of_absorption(rank),
                _TAG_PTREE_DOWN + level_of_absorption(rank),
            )
        scratch = workspace is not None and a_local.flags.writeable
        with _obs.span("tsqr.local_qr", phase="qr", rank=comm.rank):
            self._q1, self._r1 = qr_positive(a_local, overwrite_a=scratch)
        # In-flight sends are retained until finish() (mpi4py send
        # requests own the wire buffer; see PipelinedGatherStep).
        self._outbox = []
        # Leaf fast path: a rank absorbed at level 0 performs no merges,
        # so its R is final now — ship it and let it overlap the partner's
        # local QR (and whatever the caller does next).
        self._sent_leaf = bool(rank & 1) and size > 1
        if self._sent_leaf:
            self._outbox.append(
                comm.isend(self._r1, rank - 1, _TAG_PTREE_UP + 0)
            )
        # Cached upsweep result, populated either by finish() or eagerly
        # by advance() — running the upsweep as soon as the partner R
        # factors arrive ships this rank's merged R up the tree without
        # waiting for an explicit finish, which is what lets background
        # progress daemons complete tree steps on every rank: the root's
        # readiness depends on its children's upsweeps having run.
        self._upswept = None

    def _run_upsweep(self):
        if self._upswept is None:
            self._upswept = _tree_upsweep(
                self._comm,
                self._r1,
                self._up,
                self._workspace,
                self._n,
                _TAG_PTREE_UP,
                skip_first_send=self._sent_leaf,
            )
        return self._upswept

    def advance(self) -> bool:
        """Non-blocking progress poll: ``True`` when :meth:`finish` can
        run without waiting on any peer.

        Two stages.  First, once every upsweep receive in this rank's
        static schedule has arrived, the upsweep runs *eagerly* — merging
        the R factors and shipping the result toward the root (pure
        ``test()`` polling would deadlock here: the root's last upsweep
        receive only arrives when its child runs *its* upsweep, which
        plain ``finish`` defers).  Second, a non-root is ready once the
        fused downsweep payload landed; the root is ready as soon as its
        upsweep is done.
        """
        if self._upswept is None:
            if not all(request.test()[0] for request in self._up.values()):
                return False
            self._run_upsweep()
        if self._comm.rank == 0:
            return True
        down = self._down
        return down is not None and bool(down.test()[0])

    def finish(self, reduce_fn: Callable[[np.ndarray], tuple]) -> tuple:
        """Complete the step; ``reduce_fn`` runs on rank 0 only."""
        with _obs.span(
            "tsqr.finish", phase="tsqr_comm", rank=self._comm.rank
        ):
            return self._finish(reduce_fn)

    def _finish(self, reduce_fn: Callable[[np.ndarray], tuple]) -> tuple:
        comm = self._comm
        rank = comm.rank
        r_current, q_factors, merge_meta = self._run_upsweep()
        if rank == 0:
            # The identity seed depends only on R's shape/dtype; build it
            # before reduce_fn, which may consume R in place.
            correction = np.eye(r_current.shape[0], dtype=r_current.dtype)
            reduced = tuple(reduce_fn(r_current))
            combine, rest = reduced[0], tuple(reduced[1:])
            extras = (
                _frozen_copy(combine),
            ) + tuple(
                _frozen_copy(item) if isinstance(item, np.ndarray) else item
                for item in rest
            )
        else:
            with _obs.span("tsqr.down_wait", phase="wait", rank=rank):
                payload = self._down.wait()
            correction = payload[0]
            extras = tuple(payload[1:])
            combine, rest = extras[0], tuple(extras[1:])
        for q_merge, (partner, my_rows, partner_rows) in zip(
            reversed(q_factors), reversed(merge_meta)
        ):
            combined = q_merge @ correction
            piece = _frozen_copy(combined[my_rows : my_rows + partner_rows])
            self._outbox.append(
                comm.isend(
                    (piece,) + extras,
                    partner,
                    _TAG_PTREE_DOWN + level_of_absorption(partner),
                )
            )
            correction = combined[:my_rows]
        # Small-first fuse at the leaf: fold the combine factor into the
        # (n x n) correction before the single tall GEMM the caller runs.
        fused = correction @ combine
        # Drain the outbox (matching receives are preposted; see the
        # gather step).
        for request in self._outbox:
            request.wait()
        self._outbox = []
        return (self._q1, fused) + rest

    def abort(self) -> None:
        """Abandon the in-flight step: cancel the upsweep schedule, the
        downsweep receive and the outbox (see
        :meth:`PipelinedGatherStep.abort`)."""
        for request in (getattr(self, "_up", None) or {}).values():
            _abort_request(request)
        self._up = {}
        down = getattr(self, "_down", None)
        if down is not None:
            _abort_request(down)
            self._down = None
        for request in getattr(self, "_outbox", []):
            _abort_request(request)
        self._outbox = []


def level_of_absorption(rank: int) -> int:
    """Tree level at which ``rank`` sent its R upward (index of its lowest
    set bit); rank 0 never sends."""
    if rank == 0:
        raise ValueError("rank 0 is the reduction root and is never absorbed")
    return (rank & -rank).bit_length() - 1


def stride_of_absorption(rank: int) -> int:
    """Stride (``2^level``) at which ``rank`` was absorbed."""
    if rank == 0:
        raise ValueError("rank 0 is the reduction root and is never absorbed")
    return rank & -rank
