"""Registry of the SPMD static-analysis rules.

Each rule has a stable code (referenced by findings, suppressions, the
protocol docstring in :mod:`repro.smpi.factory` and the README table), a
one-line summary of the defect, and a fix-it.  The detection logic lives
in :mod:`repro.verify.static`; this module is pure data so docs and
tooling can enumerate the rules without importing the analyzer.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

__all__ = ["Rule", "RULES"]


@dataclasses.dataclass(frozen=True)
class Rule:
    """One static rule: stable code, slug, defect summary, fix-it."""

    code: str
    name: str
    summary: str
    fixit: str


_RULES = (
    Rule(
        code="SPMD000",
        name="parse-error",
        summary="file could not be parsed",
        fixit="fix the syntax error; unparseable files are never verified",
    ),
    Rule(
        code="SPMD001",
        name="rank-dependent-collective",
        summary=(
            "collective issued inside a rank-dependent branch without a "
            "matching call in the other arm"
        ),
        fixit=(
            "issue the matching collective on every rank (every arm of "
            "the branch), or hoist the call out of the branch — ranks "
            "that skip it deadlock the others"
        ),
    ),
    Rule(
        code="SPMD002",
        name="unawaited-request",
        summary=(
            "nonblocking request is discarded or never reaches "
            "wait()/test()/waitall()"
        ),
        fixit=(
            "keep the returned request and complete it with "
            "wait()/test()/waitall() (or cancel() a deliberately "
            "abandoned receive) — a dropped request loses its message, "
            "and a dropped collective request can deadlock peers "
            "waiting on this rank's deferred share"
        ),
    ),
    Rule(
        code="SPMD003",
        name="reserved-tag",
        summary=(
            "hardcoded tag inside the reserved nonblocking-collective "
            "band (tags >= NB_TAG_BASE = 1 << 24)"
        ),
        fixit=(
            "use an application tag below NB_TAG_BASE; the band at and "
            "above it carries the derived nonblocking collectives' "
            "internal traffic and a clashing tag corrupts their matching"
        ),
    ),
    Rule(
        code="SPMD004",
        name="aliased-out-buffer",
        summary="out= buffer aliases the collective's own input",
        fixit=(
            "pass a distinct preallocated buffer as out=, or drop out= "
            "and let the collective allocate its result — the "
            "rank-ordered fold reads contributions while writing the "
            "output"
        ),
    ),
    Rule(
        code="SPMD005",
        name="snapshot-write",
        summary=(
            "write to an array received from a broadcast/snapshot fast "
            "lane (shared read-only across receivers)"
        ),
        fixit=(
            "copy before mutating (arr = arr.copy()) — bcast payloads "
            "may be one zero-copy snapshot shared by every receiver, "
            "and mutating it either raises (read-only) or corrupts "
            "other ranks"
        ),
    ),
)

#: Rule registry keyed by code.
RULES: Dict[str, Rule] = {rule.code: rule for rule in _RULES}
