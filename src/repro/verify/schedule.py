"""Cross-rank schedule conformance and shutdown-time leak detection.

The dynamic half of ``repro.verify``: instead of predicting violations
from source, it *observes* a run.

* :func:`check_schedules` aligns the per-rank collective op streams
  recorded by :class:`~repro.smpi.tracer.CommTracer` (via
  :meth:`~repro.smpi.tracer.CommTracer.schedule`) and reports the first
  divergence: a rank issuing a different collective at some position, a
  mismatched root, an incompatible dtype, or one rank's stream simply
  ending early.  Divergences that deadlock under MPI often *complete*
  on the in-process backends (unbounded mailboxes), which is exactly
  what makes them checkable here.
* :func:`checked_run` wraps :meth:`repro.api.Session.run` with tracing
  and :func:`repro.smpi.provenance.track`, then reports schedule
  divergence plus leaked resources: requests still pending at shutdown,
  envelopes never recycled, and requests that were garbage-collected
  un-awaited (captured from their ``ResourceWarning`` finalizers).

Caveat: receive-side *nonblocking* collectives record at completion
time, so a heavily overlapped schedule can legitimately reorder records
relative to issue order; the checker is exact for blocking-dominant
runs (every driver shipped in this repo when ``overlap`` is off).
"""

from __future__ import annotations

import dataclasses
import gc
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.smpi.provenance import Leak, track
from repro.smpi.tracer import COLLECTIVE_OPS, CommRecord

__all__ = [
    "CheckedRun",
    "Divergence",
    "ScheduleReport",
    "check_schedules",
    "checked_run",
    "format_leaks",
]

#: Ops whose recorded payload shape must agree across ranks (contribution
#: shapes of gather-flavoured ops legitimately differ per rank).
_SHAPE_CHECKED = frozenset({"bcast", "allreduce", "reduce", "scan", "exscan"})


@dataclasses.dataclass(frozen=True)
class Divergence:
    """First point where the per-rank collective streams disagree."""

    index: int
    field: str
    values: Dict[int, Any]

    def describe(self) -> str:
        per_rank = ", ".join(
            f"rank {rank}: {value!r}"
            for rank, value in sorted(self.values.items())
        )
        what = {
            "op": "different collectives issued",
            "root": "different roots",
            "dtype": "incompatible payload dtypes",
            "shape": "incompatible payload shapes",
            "length": "stream ended early on some rank(s)",
        }.get(self.field, self.field)
        return (
            f"schedule divergence at collective #{self.index} "
            f"({what}): {per_rank}"
        )


@dataclasses.dataclass
class ScheduleReport:
    """Outcome of one cross-rank conformance check."""

    streams: Dict[int, List[CommRecord]]
    divergence: Optional[Divergence]

    @property
    def ok(self) -> bool:
        return self.divergence is None

    def describe(self) -> str:
        counts = {rank: len(s) for rank, s in sorted(self.streams.items())}
        if self.ok:
            return (
                f"schedules conform across {len(self.streams)} rank(s) "
                f"({counts} collectives per rank)"
            )
        return self.divergence.describe()


def _as_schedule(stream: Any) -> List[CommRecord]:
    """Normalize a tracer / record list to its collective-op stream."""
    if hasattr(stream, "schedule"):
        return list(stream.schedule())
    records = getattr(stream, "records", stream)
    return [r for r in records if r.op in COLLECTIVE_OPS]


def check_schedules(streams: Sequence[Any]) -> ScheduleReport:
    """Align per-rank collective streams; report the first divergence.

    ``streams`` is rank-ordered: :class:`~repro.smpi.tracer.CommTracer`
    objects (as returned by ``Session.run(..., trace=True)`` /
    ``run_spmd(trace=True)``) or plain :class:`CommRecord` lists.
    """
    schedules = {rank: _as_schedule(s) for rank, s in enumerate(streams)}
    report = ScheduleReport(streams=schedules, divergence=None)
    if len(schedules) <= 1:
        return report
    length = max(len(s) for s in schedules.values())
    for index in range(length):
        missing = {
            rank: None
            for rank, s in schedules.items()
            if index >= len(s)
        }
        if missing:
            values: Dict[int, Any] = {
                rank: (s[index].op if index < len(s) else None)
                for rank, s in schedules.items()
            }
            report.divergence = Divergence(index, "length", values)
            return report
        here = {rank: s[index] for rank, s in schedules.items()}
        for field in ("op", "root", "dtype", "shape"):
            observed = {
                rank: getattr(record, field) for rank, record in here.items()
            }
            if field == "shape" and next(
                iter(here.values())
            ).op not in _SHAPE_CHECKED:
                continue
            if field in ("dtype", "shape"):
                # Non-array payloads record None; only conflicting
                # concrete values diverge.
                concrete = {v for v in observed.values() if v is not None}
                if len(concrete) > 1:
                    report.divergence = Divergence(index, field, observed)
                    return report
            elif len(set(observed.values())) > 1:
                report.divergence = Divergence(index, field, observed)
                return report
    return report


def format_leaks(leaks: Sequence[Leak]) -> str:
    """Human-readable multi-line leak report."""
    if not leaks:
        return "no leaked requests or envelopes"
    lines = [f"{len(leaks)} leaked resource(s):"]
    for leak in leaks:
        lines.extend("  " + line for line in leak.describe().splitlines())
    return "\n".join(lines)


@dataclasses.dataclass
class CheckedRun:
    """Everything :func:`checked_run` observed about one workload."""

    results: List[Any]
    schedule: ScheduleReport
    leaks: List[Leak]
    unawaited: List[str]

    @property
    def ok(self) -> bool:
        return self.schedule.ok and not self.leaks and not self.unawaited

    def describe(self) -> str:
        lines = [self.schedule.describe(), format_leaks(self.leaks)]
        if self.unawaited:
            lines.append(
                f"{len(self.unawaited)} request(s) garbage-collected "
                f"un-awaited:"
            )
            lines.extend("  " + message for message in self.unawaited)
        else:
            lines.append("no requests garbage-collected un-awaited")
        return "\n".join(lines)


def checked_run(
    config: Any,
    fn: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> CheckedRun:
    """Run ``fn`` through :meth:`repro.api.Session.run` under full
    dynamic verification.

    Wraps the run in communicator tracing and provenance tracking, then
    reports: cross-rank schedule conformance, resources still
    outstanding after the run (requests pending, envelopes unrecycled —
    each with its creation site), and requests that died un-awaited
    during the run (their ``ResourceWarning`` finalizers, identified by
    the ``SPMD002`` marker in the message).
    """
    from repro.api import Session

    with track(capture_tracebacks=True) as scope:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", ResourceWarning)
            results, tracers = Session.run(
                config, fn, *args, trace=True, **kwargs
            )
            # Surface finalizers for anything the workload dropped
            # (reference cycles through exception tracebacks are common).
            gc.collect()
        leaks = scope.leaks()
    unawaited = [
        str(entry.message)
        for entry in caught
        if issubclass(entry.category, ResourceWarning)
        and "SPMD002" in str(entry.message)
    ]
    return CheckedRun(
        results=results,
        schedule=check_schedules(tracers or []),
        leaks=leaks,
        unawaited=unawaited,
    )
