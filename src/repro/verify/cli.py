"""Implementation of the ``repro verify`` CLI subcommand.

Static mode (default) lints the given paths (files or directory trees)
with :func:`repro.verify.static.lint_paths` and prints one finding per
violation with its fix-it.  ``--schedule`` additionally runs a small
built-in streaming-SVD workload under :func:`repro.verify.schedule.
checked_run` and reports cross-rank schedule conformance and resource
leaks.  Exit status is nonzero when anything is found.
"""

from __future__ import annotations

import argparse
import json
from typing import List

__all__ = ["add_verify_arguments", "run_verify"]

#: Paths linted when the user names none.
DEFAULT_PATHS = ("src", "examples", "benchmarks")


def add_verify_arguments(parser: argparse.ArgumentParser) -> None:
    """Register ``repro verify``'s arguments on its subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to report (default: all); "
        "e.g. --select SPMD001,SPMD002",
    )
    parser.add_argument(
        "--schedule",
        action="store_true",
        help="also run a built-in streaming workload under cross-rank "
        "trace conformance checking and leak detection",
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=2,
        help="rank count for the --schedule workload (threads backend)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format",
    )


def _schedule_smoke(ranks: int):
    """A tiny deterministic streaming-SVD run for the dynamic check."""
    import numpy as np

    from repro.api import (
        BackendConfig,
        RunConfig,
        Session,
        SolverConfig,
        StreamConfig,
    )
    from repro.verify.schedule import checked_run

    rng = np.random.default_rng(7)
    data = rng.standard_normal((64, 48))
    config = RunConfig(
        solver=SolverConfig(K=4, ff=1.0, r1=20),
        backend=BackendConfig(name="threads", size=ranks),
        stream=StreamConfig(batch=16),
    )

    def job(session: Session):
        return session.fit_stream(data).result().singular_values

    return checked_run(config, job)


def run_verify(args: argparse.Namespace) -> int:
    from repro.verify.static import lint_paths

    paths = list(args.paths) or list(DEFAULT_PATHS)
    findings = lint_paths(paths)
    if args.select:
        selected = {
            code.strip().upper()
            for code in args.select.split(",")
            if code.strip()
        }
        findings = [f for f in findings if f.code in selected]

    checked = None
    if args.schedule:
        checked = _schedule_smoke(args.ranks)

    failed = bool(findings) or (checked is not None and not checked.ok)
    if args.output_format == "json":
        payload = {"findings": [f.to_dict() for f in findings]}
        if checked is not None:
            payload["schedule"] = {
                "ok": checked.schedule.ok,
                "divergence": (
                    None
                    if checked.schedule.ok
                    else checked.schedule.divergence.describe()
                ),
                "leaks": [leak.describe() for leak in checked.leaks],
                "unawaited": list(checked.unawaited),
            }
        print(json.dumps(payload, indent=2))
        return 1 if failed else 0

    lines: List[str] = []
    for finding in findings:
        lines.append(finding.format())
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    else:
        lines.append(f"static: no findings in {' '.join(paths)}")
    if checked is not None:
        lines.append("dynamic: " + checked.describe().replace("\n", "\n  "))
    print("\n".join(lines))
    return 1 if failed else 0
