"""Static SPMD linter: AST analysis of communicator call sites.

The analyzer knows the communicator protocol's call surface (collective
method names, nonblocking request factories, tag argument positions) and
flags the violation patterns in :data:`repro.verify.rules.RULES` without
running any code.  It is deliberately *syntactic*: a condition that hides
rank-dependence behind a variable (``leader = comm.rank == 0; if
leader:``) is not detected, and a request completed through a helper the
analyzer cannot see is treated as escaped (not flagged).  False
negatives are acceptable; false positives on the shipped tree are not —
``repro verify src examples benchmarks`` must report zero findings.

Suppression: append ``# spmd: ignore[SPMD001]`` (comma-separated codes,
or bare ``# spmd: ignore`` for all) to the flagged line.

Rule sketches
-------------
``SPMD001``
    A collective issued under an ``if`` whose test mentions ``.rank`` /
    ``.Get_rank()``, without a matching call (same method) in the other
    arm.  The root/receiver split — both arms issue the collective — is
    the sanctioned shape and is not flagged; when the branch body ends
    in ``return``/``break``/``continue``, the statements after the
    ``if`` are treated as the other arm (the early-return split).
``SPMD002``
    A nonblocking call (``isend``/``irecv``/``ibcast``/…) whose result
    is discarded (bare expression statement) or bound to a name that is
    never read again in the enclosing scope.  Any read — a ``wait()``,
    a ``waitall`` argument, an append, a return — counts as an escape.
``SPMD003``
    A point-to-point call whose tag argument folds to a constant at or
    above :data:`~repro.smpi.nonblocking.NB_TAG_BASE` (``1 << 24``).
``SPMD004``
    A collective taking ``out=`` whose output buffer is syntactically
    the same expression as its input.
``SPMD005``
    A name bound from a ``bcast`` result (or an alias of one) mutated
    in place: subscript store, augmented assignment, or an in-place
    ndarray mutator (``fill``/``sort``/…).
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.smpi.nonblocking import NB_TAG_BASE

from .rules import RULES

__all__ = [
    "BLOCKING_COLLECTIVES",
    "NONBLOCKING_COLLECTIVES",
    "NONBLOCKING_METHODS",
    "Finding",
    "lint_file",
    "lint_paths",
    "lint_source",
]

#: Blocking collective method names of the communicator protocol.
BLOCKING_COLLECTIVES = frozenset(
    {
        "bcast",
        "gather",
        "allgather",
        "scatter",
        "gatherv_rows",
        "scatterv_rows",
        "reduce",
        "allreduce",
        "alltoall",
        "scan",
        "exscan",
        "reduce_scatter",
        "barrier",
        "Bcast",
        "Gather",
        "Scatter",
        "Allgather",
        "Allreduce",
    }
)

#: Nonblocking collective factories (return a CollectiveRequest).
NONBLOCKING_COLLECTIVES = frozenset(
    {"ibcast", "igatherv_rows", "iallreduce", "ialltoall"}
)

#: Every collective name SPMD001 considers schedule-relevant.
_ALL_COLLECTIVES = BLOCKING_COLLECTIVES | NONBLOCKING_COLLECTIVES

#: Every method returning a request SPMD002 tracks.
NONBLOCKING_METHODS = frozenset({"isend", "irecv"}) | NONBLOCKING_COLLECTIVES

#: Positional index of the ``tag`` argument per point-to-point method.
_TAG_POSITION = {
    "send": 2,
    "isend": 2,
    "Send": 2,
    "recv": 1,
    "irecv": 1,
    "Recv": 2,
    "iprobe": 1,
}

#: In-place ndarray mutators SPMD005 treats as writes.
_MUTATORS = frozenset({"fill", "sort", "put", "partition", "itemset", "resize"})

_SUPPRESS_RE = re.compile(
    r"#\s*spmd:\s*ignore(?:\[\s*([A-Za-z0-9_\s,]+?)\s*\])?"
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def fixit(self) -> str:
        """The rule's fix-it guidance."""
        return RULES[self.code].fixit

    def format(self) -> str:
        """``path:line:col: CODE message`` plus the fix-it."""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"{self.message}\n    fix: {self.fixit}"
        )

    def to_dict(self) -> Dict[str, Union[str, int]]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "fixit": self.fixit,
        }


# -- AST helpers -------------------------------------------------------------

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_PRUNE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _walk_pruned(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function bodies
    (they execute later, in their own scope)."""
    yield node
    for child in ast.iter_child_nodes(node):
        if isinstance(child, _PRUNE_NODES):
            continue
        yield from _walk_pruned(child)


def _child_blocks(stmt: ast.stmt) -> Iterator[List[ast.stmt]]:
    """Every statement list nested directly inside ``stmt``."""
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if block:
            yield block
    for handler in getattr(stmt, "handlers", ()):
        yield handler.body
    for case in getattr(stmt, "cases", ()):
        yield case.body


def _scope_statements(body: Sequence[ast.stmt]) -> List[ast.stmt]:
    """Flatten a scope's statements in source order, excluding nested
    function bodies (separate scopes)."""
    out: List[ast.stmt] = []

    def visit(stmts: Sequence[ast.stmt]) -> None:
        for stmt in stmts:
            out.append(stmt)
            if isinstance(stmt, _SCOPE_NODES):
                continue
            for block in _child_blocks(stmt):
                visit(block)

    visit(body)
    return out


def _mentions_rank(node: ast.AST) -> bool:
    """Does the expression read this process's rank?"""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr == "rank":
            return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "Get_rank"
        ):
            return True
    return False


def _method_call(node: ast.AST, names: frozenset) -> Optional[str]:
    """The method name when ``node`` is an ``obj.<name>(...)`` call with
    ``name`` in ``names``; ``None`` otherwise."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in names
    ):
        return node.func.attr
    return None


def _collectives_in(stmts: Sequence[ast.stmt]) -> List[Tuple[str, ast.Call]]:
    found: List[Tuple[str, ast.Call]] = []
    for stmt in stmts:
        for node in _walk_pruned(stmt):
            name = _method_call(node, _ALL_COLLECTIVES)
            if name is not None:
                found.append((name, node))  # type: ignore[arg-type]
    return found


def _terminates(body: Sequence[ast.stmt]) -> bool:
    """Does the branch body end by leaving the enclosing block on every
    path through its last statement?  (``raise`` is excluded: an error
    path diverging from the schedule is the expected shape of a guard.)"""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Break, ast.Continue)
    )


def _const_int(node: ast.AST) -> Optional[int]:
    """Fold a pure-literal integer expression (``1 << 24``, ``3 + 4``)."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool) or not isinstance(node.value, int):
            return None
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = _const_int(node.operand)
        return None if value is None else -value
    if isinstance(node, ast.BinOp):
        left = _const_int(node.left)
        right = _const_int(node.right)
        if left is None or right is None:
            return None
        try:
            if isinstance(node.op, ast.LShift):
                return left << right
            if isinstance(node.op, ast.RShift):
                return left >> right
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv):
                return left // right
            if isinstance(node.op, ast.Mod):
                return left % right
            if isinstance(node.op, ast.BitOr):
                return left | right
            if isinstance(node.op, ast.BitAnd):
                return left & right
            if isinstance(node.op, ast.BitXor):
                return left ^ right
            if isinstance(node.op, ast.Pow):
                return left**right
        except (ValueError, ZeroDivisionError, OverflowError):
            return None
    return None


# -- rule checks -------------------------------------------------------------


class _Analyzer:
    """One file's analysis pass; collects findings across all rules."""

    def __init__(self, tree: ast.Module, path: str) -> None:
        self._tree = tree
        self._path = path
        self.findings: List[Finding] = []
        self._flagged: Set[Tuple[int, str]] = set()

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        key = (id(node), code)
        if key in self._flagged:
            return
        self._flagged.add(key)
        self.findings.append(
            Finding(
                path=self._path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                code=code,
                message=message,
            )
        )

    def run(self) -> List[Finding]:
        self._check_rank_branches(self._tree.body)
        for scope in self._scopes():
            body = scope.body  # Module and FunctionDef both carry one
            self._check_unawaited(scope, body)
            self._check_snapshot_writes(body)
        self._check_tags()
        self._check_aliasing()
        self.findings.sort(key=lambda f: (f.line, f.col, f.code))
        return self.findings

    def _scopes(self) -> Iterator[ast.AST]:
        yield self._tree
        for node in ast.walk(self._tree):
            if isinstance(node, _SCOPE_NODES):
                yield node

    # SPMD001 ----------------------------------------------------------------
    def _check_rank_branches(self, stmts: Sequence[ast.stmt]) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If) and _mentions_rank(stmt.test):
                body_calls = _collectives_in(stmt.body)
                explicit_else = bool(stmt.orelse)
                if explicit_else:
                    else_calls = _collectives_in(stmt.orelse)
                elif _terminates(stmt.body):
                    # Early-return split: the code after the `if` is the
                    # other ranks' arm.
                    else_calls = _collectives_in(stmts[index + 1 :])
                else:
                    else_calls = []
                body_names = {name for name, _ in body_calls}
                else_names = {name for name, _ in else_calls}
                for name, call in body_calls:
                    if name not in else_names:
                        self._flag(
                            call,
                            "SPMD001",
                            f"collective '{name}' is issued only on ranks "
                            f"satisfying a rank-dependent condition; the "
                            f"other arm never issues it",
                        )
                if explicit_else or _terminates(stmt.body):
                    for name, call in else_calls:
                        if name not in body_names:
                            self._flag(
                                call,
                                "SPMD001",
                                f"collective '{name}' is issued only on "
                                f"ranks *not* satisfying a rank-dependent "
                                f"condition; the branch arm never issues it",
                            )
            for block in _child_blocks(stmt):
                self._check_rank_branches(block)

    # SPMD002 ----------------------------------------------------------------
    def _check_unawaited(self, scope: ast.AST, body: Sequence[ast.stmt]) -> None:
        loads: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                loads.add(node.id)
        for stmt in _scope_statements(body):
            if isinstance(stmt, ast.Expr):
                name = _method_call(stmt.value, NONBLOCKING_METHODS)
                if name is not None:
                    self._flag(
                        stmt.value,
                        "SPMD002",
                        f"the request returned by '{name}' is discarded; "
                        f"it never reaches wait()/test()/waitall()",
                    )
                continue
            targets: List[Tuple[ast.expr, ast.expr]] = []
            if isinstance(stmt, ast.Assign) and len(stmt.targets) >= 1:
                for target in stmt.targets:
                    if isinstance(target, ast.Tuple) and isinstance(
                        stmt.value, ast.Tuple
                    ):
                        if len(target.elts) == len(stmt.value.elts):
                            targets.extend(zip(target.elts, stmt.value.elts))
                    else:
                        targets.append((target, stmt.value))
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets.append((stmt.target, stmt.value))
            for target, value in targets:
                name = _method_call(value, NONBLOCKING_METHODS)
                if name is None or not isinstance(target, ast.Name):
                    # Attribute / subscript targets escape the scope's
                    # view — assume something completes them later.
                    continue
                if target.id not in loads:
                    self._flag(
                        value,
                        "SPMD002",
                        f"request '{target.id}' from '{name}' is never "
                        f"read again in this scope; it never reaches "
                        f"wait()/test()/waitall()",
                    )

    # SPMD003 ----------------------------------------------------------------
    def _check_tags(self) -> None:
        for node in ast.walk(self._tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            method = node.func.attr
            if method not in _TAG_POSITION:
                continue
            tag_expr: Optional[ast.expr] = None
            for keyword in node.keywords:
                if keyword.arg == "tag":
                    tag_expr = keyword.value
            if tag_expr is None:
                position = _TAG_POSITION[method]
                if len(node.args) > position:
                    tag_expr = node.args[position]
            if tag_expr is None:
                continue
            value = _const_int(tag_expr)
            if value is not None and value >= NB_TAG_BASE:
                self._flag(
                    tag_expr,
                    "SPMD003",
                    f"tag {value} in '{method}' lies inside the reserved "
                    f"band (NB_TAG_BASE = 1 << 24 = {NB_TAG_BASE})",
                )

    # SPMD004 ----------------------------------------------------------------
    def _check_aliasing(self) -> None:
        out_taking = frozenset(
            {"allreduce", "iallreduce", "gatherv_rows", "igatherv_rows"}
        )
        for node in ast.walk(self._tree):
            name = _method_call(node, out_taking)
            if name is None:
                continue
            call = node  # type: ignore[assignment]
            assert isinstance(call, ast.Call)
            if not call.args:
                continue
            for keyword in call.keywords:
                if keyword.arg == "out" and ast.dump(keyword.value) == ast.dump(
                    call.args[0]
                ):
                    self._flag(
                        keyword.value,
                        "SPMD004",
                        f"out= buffer of '{name}' aliases its input "
                        f"'{ast.unparse(call.args[0])}'",
                    )

    # SPMD005 ----------------------------------------------------------------
    def _check_snapshot_writes(self, body: Sequence[ast.stmt]) -> None:
        frozen: Set[str] = set()
        for stmt in _scope_statements(body):
            if isinstance(stmt, ast.Assign):
                from_bcast = _method_call(stmt.value, frozenset({"bcast"}))
                aliases = (
                    isinstance(stmt.value, ast.Name)
                    and stmt.value.id in frozen
                )
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if from_bcast or aliases:
                            frozen.add(target.id)
                        else:
                            frozen.discard(target.id)
                    elif isinstance(target, ast.Tuple):
                        for element in target.elts:
                            if isinstance(element, ast.Name):
                                frozen.discard(element.id)
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in frozen
                    ):
                        self._flag(
                            target,
                            "SPMD005",
                            f"subscript write to '{target.value.id}', an "
                            f"array received from bcast (possibly a "
                            f"shared read-only snapshot)",
                        )
            elif isinstance(stmt, ast.AugAssign):
                base: Optional[str] = None
                if isinstance(stmt.target, ast.Name):
                    base = stmt.target.id
                elif isinstance(stmt.target, ast.Subscript) and isinstance(
                    stmt.target.value, ast.Name
                ):
                    base = stmt.target.value.id
                if base is not None and base in frozen:
                    self._flag(
                        stmt,
                        "SPMD005",
                        f"augmented assignment to '{base}', an array "
                        f"received from bcast (possibly a shared "
                        f"read-only snapshot)",
                    )
            elif isinstance(stmt, ast.Expr):
                call = stmt.value
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _MUTATORS
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id in frozen
                ):
                    self._flag(
                        call,
                        "SPMD005",
                        f"in-place '{call.func.attr}()' on "
                        f"'{call.func.value.id}', an array received from "
                        f"bcast (possibly a shared read-only snapshot)",
                    )


# -- suppression and entry points -------------------------------------------


def _suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Per-line suppression map: line -> set of codes, or ``None`` for
    "suppress everything on this line"."""
    table: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        if match.group(1) is None:
            table[number] = None
        else:
            codes = {
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            }
            table[number] = codes
    return table


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Analyze one module's source; returns unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code="SPMD000",
                message=f"could not parse: {exc.msg}",
            )
        ]
    findings = _Analyzer(tree, path).run()
    table = _suppressions(source)
    kept = []
    for finding in findings:
        codes = table.get(finding.line, ...)
        if codes is None:
            continue
        if codes is not ... and finding.code in codes:
            continue
        kept.append(finding)
    return kept


def lint_file(path: Union[str, pathlib.Path]) -> List[Finding]:
    """Analyze one file."""
    file_path = pathlib.Path(path)
    return lint_source(file_path.read_text(encoding="utf-8"), str(file_path))


def lint_paths(paths: Iterable[Union[str, pathlib.Path]]) -> List[Finding]:
    """Analyze files and directory trees (``**/*.py``); findings are
    ordered by path, then location."""
    files: List[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    findings: List[Finding] = []
    for file_path in files:
        findings.extend(lint_file(file_path))
    return findings
