"""Pytest integration for the SPMD leak detector.

Two pieces:

* a **global guard** (autouse fixture): every test runs with the
  provenance tracker enabled (no traceback capture — cheap), and fails
  at teardown if it leaves behind a live, never-completed request.
  This is what lets the whole tier-1 suite assert "no leaked requests"
  without touching individual tests.  A test that *deliberately*
  abandons requests can opt out with ``@pytest.mark.spmd_allow_leaks``.
* an **opt-in fixture** ``spmd_leak_guard``: a scoped
  :class:`~repro.smpi.provenance.TrackScope` with traceback capture on,
  for tests that want to assert on (or inspect) leak reports directly.

Registered repo-wide from the root ``conftest.py`` via
``pytest_plugins = ("repro.verify.pytest_plugin",)``.
"""

from __future__ import annotations

import gc
from typing import Iterator, List

import pytest

from repro.smpi.provenance import Leak, TRACKER, TrackScope, track

__all__ = ["spmd_leak_guard"]


def pytest_configure(config) -> None:
    config.addinivalue_line(
        "markers",
        "spmd_allow_leaks: skip the global SPMD leaked-request check "
        "(the test deliberately abandons nonblocking requests)",
    )


def _pending_after_gc(mark: int) -> List[Leak]:
    """Still-pending requests created after ``mark``, after giving the
    collector a chance to clear reference cycles (exception tracebacks
    commonly pin abandoned requests)."""
    pending = TRACKER.pending_requests(mark)
    if pending:
        gc.collect()
        pending = TRACKER.pending_requests(mark)
    return pending


@pytest.fixture(autouse=True)
def _spmd_global_leak_check(request) -> Iterator[None]:
    """Fail any test that leaves a live, never-completed request."""
    if request.node.get_closest_marker("spmd_allow_leaks"):
        yield
        return
    TRACKER.enable(capture_tracebacks=False)
    mark = TRACKER.mark()
    try:
        yield
        pending = _pending_after_gc(mark)
    finally:
        TRACKER.disable(capture_tracebacks=False)
    if pending:
        details = "\n".join("  " + leak.describe() for leak in pending)
        pytest.fail(
            f"test leaked {len(pending)} un-awaited SPMD request(s) "
            f"(complete them with wait()/test()/waitall(), cancel() "
            f"deliberate abandons, or mark the test with "
            f"@pytest.mark.spmd_allow_leaks):\n{details}",
            pytrace=False,
        )


@pytest.fixture
def spmd_leak_guard() -> Iterator[TrackScope]:
    """Provenance scope with creation tracebacks, failing on any leak.

    Yields the :class:`~repro.smpi.provenance.TrackScope`; the test can
    also query it directly (``scope.pending_requests()`` etc.).  At
    teardown, any outstanding request *or* envelope fails the test with
    creation sites.
    """
    with track(capture_tracebacks=True) as scope:
        yield scope
        leaks = scope.leaks()
        if leaks:
            gc.collect()
            leaks = scope.leaks()
        if leaks:
            details = "\n".join("  " + leak.describe() for leak in leaks)
            pytest.fail(
                f"{len(leaks)} SPMD resource leak(s):\n{details}",
                pytrace=False,
            )
