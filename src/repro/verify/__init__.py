"""``repro.verify`` — SPMD collective-correctness analyzers.

The communicator protocol (:mod:`repro.smpi.factory`) only works when
every rank keeps to a shared schedule: same collectives, same order,
compatible payloads, every nonblocking request completed.  Nothing in
Python enforces any of that — a violated contract surfaces as a hang, a
silently dropped message, or a value that is wrong only at ``p > 1``.
This package checks the contract two ways:

* **statically** (:mod:`repro.verify.static`): an AST linter over driver
  code that knows the communicator call surface and flags the five
  violation patterns in :data:`repro.verify.rules.RULES` (``SPMD001`` …
  ``SPMD005``), each with a fix-it and a per-line
  ``# spmd: ignore[SPMDxxx]`` suppression;
* **dynamically** (:mod:`repro.verify.schedule`): a cross-rank trace
  conformance checker built on :class:`~repro.smpi.tracer.CommTracer`
  (align per-rank collective streams, report the first divergence) plus
  a shutdown-time leak detector built on :mod:`repro.smpi.provenance`
  (un-awaited requests, unrecycled envelopes, with creation-site
  provenance).

Entry points: the ``repro verify`` CLI subcommand (static over paths;
``--schedule`` for the dynamic smoke check), :func:`checked_run` to wrap
any :meth:`repro.api.Session.run` workload, and the
:mod:`repro.verify.pytest_plugin` pytest plugin whose global guard makes
the test suite assert "no leaked requests".
"""

from .rules import RULES, Rule
from .schedule import (
    CheckedRun,
    Divergence,
    ScheduleReport,
    check_schedules,
    checked_run,
    format_leaks,
)
from .static import Finding, lint_file, lint_paths, lint_source

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "CheckedRun",
    "Divergence",
    "ScheduleReport",
    "check_schedules",
    "checked_run",
    "format_leaks",
]
