"""repro — reproduction of *PyParSVD: a streaming, distributed and
randomized singular-value-decomposition library* (Maulik & Mengaldo,
SC 2021, arXiv:2108.08845).

Public API
----------
The typed facade (start here):

* :class:`repro.api.Session` — one entry point for every driver: owns
  the communicator lifecycle, builds the solver, wires streams, and
  exposes ``fit_stream`` / ``result`` / ``save_checkpoint`` /
  ``export_to_store`` / ``query_engine`` / ``resume``.
* :class:`RunConfig` = :class:`SolverConfig` + :class:`BackendConfig` +
  :class:`StreamConfig` — the frozen, validated, JSON-round-trippable
  description of a run (also embedded into checkpoints).

Streaming SVD classes (the paper's contribution):

* :class:`ParSVDSerial` — single-process streaming SVD (Listing 1).
* :class:`ParSVDParallel` — distributed streaming randomized SVD
  (Listings 2-4); pair it with :func:`repro.smpi.run_spmd`.

Building blocks:

* :func:`repro.core.apmos_svd` — one-shot distributed SVD (Algorithm 2).
* :func:`repro.core.randomized_svd` / :func:`repro.core.low_rank_svd` —
  randomized linear algebra (section 3.3).
* :func:`repro.core.tsqr_gather` / :func:`repro.core.tsqr_tree` —
  distributed tall-skinny QR.

Substrates built for this reproduction:

* :mod:`repro.smpi` — pluggable communicator backends behind one factory
  (:func:`create_communicator` / :func:`run_backend`): the in-process
  threaded MPI stand-in, a zero-overhead single-rank communicator, and an
  optional adapter over real ``mpi4py``.
* :mod:`repro.data` — workload generators (Burgers, ERA5-like) and
  snapshot IO.
* :mod:`repro.serving` — sharded mode-base serving: a versioned
  :class:`ModeBaseStore` of gathered checkpoints, row-sharded bases, and a
  micro-batching :class:`QueryEngine` (project / reconstruct /
  reconstruction-error).
* :mod:`repro.perf` — calibrated machine model + scaling studies
  (stand-in for the Theta weak-scaling runs).
* :mod:`repro.obs` — opt-in metrics registry and span tracer wired
  through the whole stack (``repro profile``, Chrome-trace export),
  costing ~nothing while disabled.

Quickstart
----------
>>> import numpy as np
>>> from repro import ParSVDSerial
>>> data = np.random.default_rng(0).standard_normal((500, 60))
>>> svd = ParSVDSerial(K=5, ff=1.0).initialize(data[:, :20])
>>> svd = svd.incorporate_data(data[:, 20:40]).incorporate_data(data[:, 40:])
>>> svd.modes.shape, svd.singular_values.shape
((500, 5), (5,))
"""

from .api import Session, SessionResult
from .config import (
    BackendConfig,
    FaultConfig,
    FaultSpec,
    HealthConfig,
    ObservabilityConfig,
    RestartPolicy,
    RunConfig,
    ServingConfig,
    SolverConfig,
    StreamConfig,
    SVDConfig,
    TenantSpec,
)
from .core import (
    ParSVDBase,
    ParSVDParallel,
    ParSVDSerial,
    apmos_svd,
    compare_modes,
    low_rank_svd,
    randomized_svd,
    tsqr_gather,
    tsqr_tree,
)
from .exceptions import (
    BasisNotFoundError,
    ConfigurationError,
    DataFormatError,
    HealthError,
    NotInitializedError,
    ReproError,
    RescaleError,
    ServingError,
    ShapeError,
)
from .health import ElasticSession, HealthMonitor, ProgressDaemon
from .serving import ModeBase, ModeBaseStore, QueryEngine, ShardedBasis
from .smpi import (
    DeadlockError,
    FailedRankError,
    SelfCommunicator,
    create_communicator,
    run_backend,
    run_spmd,
)

__version__ = "1.4.0"

__all__ = [
    "Session",
    "SessionResult",
    "RunConfig",
    "SolverConfig",
    "BackendConfig",
    "StreamConfig",
    "ObservabilityConfig",
    "FaultConfig",
    "FaultSpec",
    "HealthConfig",
    "RestartPolicy",
    "ServingConfig",
    "TenantSpec",
    "SVDConfig",
    "ParSVDBase",
    "ParSVDSerial",
    "ParSVDParallel",
    "apmos_svd",
    "randomized_svd",
    "low_rank_svd",
    "tsqr_gather",
    "tsqr_tree",
    "compare_modes",
    "run_spmd",
    "run_backend",
    "create_communicator",
    "SelfCommunicator",
    "ModeBase",
    "ModeBaseStore",
    "ShardedBasis",
    "QueryEngine",
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "NotInitializedError",
    "DataFormatError",
    "ServingError",
    "BasisNotFoundError",
    "HealthError",
    "RescaleError",
    "DeadlockError",
    "FailedRankError",
    "HealthMonitor",
    "ProgressDaemon",
    "ElasticSession",
    "__version__",
]
