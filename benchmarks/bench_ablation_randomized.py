"""Ablation A3: randomized vs deterministic SVD (paper section 3.3).

The paper replaces dense SVDs with the randomized low-rank factorization to
"accelerate linear algebra".  This bench quantifies the trade on the matrix
shape the pipeline actually factors (tall-skinny with decaying spectrum):

* wall time: randomized (rank K) vs dense economy SVD;
* accuracy vs the oversampling and power-iteration knobs — the paper's
  plain sketch is oversampling=0, power_iters=0.

Expected shape: randomized is faster for K ≪ N and its error decreases
monotonically (in expectation) with oversampling and power iterations.
"""

import time

import numpy as np

from conftest import emit
from repro.core.randomized import randomized_svd
from repro.data.synthetic import matrix_with_spectrum, spectrum_polynomial
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table

M, N, K = 4000, 400, 10


def make_matrix():
    # slow polynomial decay: the regime where the knobs matter
    return matrix_with_spectrum(M, N, spectrum_polynomial(N, 1.0), rng=0)


def dense_svd(a):
    return np.linalg.svd(a, full_matrices=False)


def test_ablation_randomized_speed(benchmark, artifacts_dir):
    a, _, s_true, _ = make_matrix()

    # time the randomized path via pytest-benchmark
    benchmark(randomized_svd, a, K, 10, 1, 0)

    # hand-timed dense reference for the comparison table
    start = time.perf_counter()
    dense_svd(a)
    dense_s = time.perf_counter() - start
    start = time.perf_counter()
    randomized_svd(a, K, oversampling=10, power_iters=1, rng=0)
    rand_s = time.perf_counter() - start

    emit(
        artifacts_dir,
        "ablation_randomized_speed.txt",
        f"Ablation A3a: dense vs randomized SVD ({M}x{N}, K={K})\n"
        f"  dense economy SVD : {dense_s * 1e3:9.2f} ms\n"
        f"  randomized (p=10, q=1): {rand_s * 1e3:9.2f} ms\n"
        f"  speedup           : {dense_s / rand_s:9.2f}x",
    )
    assert rand_s < dense_s  # randomized must win at K << N


def test_ablation_randomized_accuracy(benchmark, artifacts_dir):
    a, _, s_true, _ = make_matrix()
    optimal = np.linalg.norm(s_true[K:])  # Eckart-Young floor

    # time the paper's plain-sketch variant
    benchmark(randomized_svd, a, K, 0, 0, 0)

    rows, errors = [], {}
    for oversampling in (0, 5, 10, 20):
        for power_iters in (0, 1, 2):
            u, s, vt = randomized_svd(
                a, K, oversampling=oversampling, power_iters=power_iters, rng=0
            )
            err = float(np.linalg.norm(a - (u * s) @ vt) / optimal)
            rows.append([oversampling, power_iters, err])
            errors[(oversampling, power_iters)] = err

    save_series_csv(
        artifacts_dir / "ablation_randomized_accuracy.csv",
        {
            "oversampling": np.array([r[0] for r in rows], dtype=float),
            "power_iters": np.array([r[1] for r in rows], dtype=float),
            "err_over_optimal": np.array([r[2] for r in rows]),
        },
    )
    emit(
        artifacts_dir,
        "ablation_randomized_accuracy.txt",
        "Ablation A3b: randomized SVD error / optimal rank-K error\n"
        "(paper's plain sketch = oversampling 0, power_iters 0)\n"
        + format_table(["oversampling", "power_iters", "err/optimal"], rows),
    )

    # shape: each knob helps (measured at the extremes to dodge noise)
    assert errors[(20, 0)] <= errors[(0, 0)]
    assert errors[(0, 2)] <= errors[(0, 0)]
    # with both knobs the factorization approaches the optimal error
    assert errors[(20, 2)] < 1.1
