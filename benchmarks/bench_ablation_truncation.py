"""Ablation A2: APMOS truncation factors r1/r2 (paper section 3.2).

The paper: "the choices for r1 and r2 may be used to balance communication
costs and accuracy for this algorithm" (defaults r1=50, r2=5).

This bench sweeps r1 at fixed r2 and reports (a) mode/spectrum accuracy
against the exact SVD and (b) the *measured* gather volume recorded by the
CommTracer.  Expected shape: accuracy improves then saturates with r1;
gathered bytes grow exactly linearly with r1.
"""

import numpy as np

from conftest import emit
from repro.core.apmos import apmos_svd
from repro.core.metrics import mode_errors
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table
from repro.smpi import run_spmd
from repro.utils.partition import block_partition

NX, NT, R2, NRANKS = 1024, 200, 5, 4
R1_SWEEP = [2, 5, 10, 20, 50, 100]


def apmos_at(data, r1):
    def job(comm):
        part = block_partition(NX, comm.size)
        block = data[part.slice_of(comm.rank), :]
        return apmos_svd(comm, block, r1=r1, r2=R2)

    results, tracers = run_spmd(NRANKS, job, trace=True)
    u = np.concatenate([r[0] for r in results], axis=0)
    s = results[0][1]
    gathered = tracers[0].bytes_for("gather")
    return u, s, gathered


def test_ablation_truncation_r1(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    u_ref, s_ref, _ = np.linalg.svd(data, full_matrices=False)

    benchmark(apmos_at, data, 50)  # time the paper default

    rows, errs, vols = [], [], []
    for r1 in R1_SWEEP:
        u, s, gathered = apmos_at(data, r1)
        k = s.shape[0]
        spec_err = float(np.max(np.abs(s - s_ref[:k]) / s_ref[:k]))
        mode_err = float(np.max(mode_errors(u_ref[:, :k], u)))
        rows.append([r1, k, spec_err, mode_err, gathered])
        errs.append(spec_err)
        vols.append(gathered)

    save_series_csv(
        artifacts_dir / "ablation_truncation_r1.csv",
        {
            "r1": np.array(R1_SWEEP, dtype=float),
            "spectrum_rel_err": np.array(errs),
            "gather_bytes_root": np.array(vols, dtype=float),
        },
    )
    emit(
        artifacts_dir,
        "ablation_truncation_r1.txt",
        f"Ablation A2: APMOS r1 sweep (Burgers {NX}x{NT}, r2={R2}, {NRANKS} ranks)\n"
        + format_table(
            ["r1", "modes", "spectrum_rel_err", "max_mode_err", "gather_bytes_at_root"],
            rows,
        ),
    )

    # shape: accuracy improves (or saturates) with r1 ...
    assert errs[-1] <= errs[0]
    assert errs[-1] < 1e-6
    # ... while the gather volume grows linearly with r1 (until clipped by
    # the numerical rank of the local blocks)
    assert vols[2] == 2 * vols[1]  # r1=10 vs r1=5
    assert all(a <= b for a, b in zip(vols, vols[1:]))


def test_ablation_truncation_r2(benchmark, artifacts_dir):
    """r2 controls how many global modes come back; values must nest."""
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()

    def apmos_r2(r2):
        def job(comm):
            part = block_partition(NX, comm.size)
            block = data[part.slice_of(comm.rank), :]
            return apmos_svd(comm, block, r1=50, r2=r2)

        results = run_spmd(NRANKS, job)
        return results[0][1]

    benchmark(apmos_r2, 5)  # time the paper-default r2
    s2 = apmos_r2(2)
    s5 = apmos_r2(5)
    s10 = apmos_r2(10)
    assert np.allclose(s2, s5[:2], rtol=1e-12)
    assert np.allclose(s5, s10[:5], rtol=1e-12)
    emit(
        artifacts_dir,
        "ablation_truncation_r2.txt",
        "Ablation A2b: r2 nesting — values at r2=2/5/10 agree on shared "
        f"prefix\n  s(r2=10) = {np.array2string(s10, precision=4)}",
    )
