"""Serving throughput: queries/sec vs micro-batch window and shard count.

The :class:`~repro.serving.QueryEngine` coalesces pending queries into one
distributed GEMM per ``(basis, kind)`` group at flush.  This bench streams
the same query log through engines with different flush windows (1 = no
batching, every query pays its own GEMM + collective) and shard counts,
and reports queries/sec, GEMM counts and collective counts.

Expected shape: for a fixed shard count, the GEMM count falls as
``ceil(n_queries / window)`` — micro-batching trades per-query latency for
throughput — and every configuration returns answers identical (1e-10) to
the serial ``analysis.reconstruction`` reference.

Artifacts: ``serving_throughput.json`` (machine-readable sweep) and
``serving_throughput.txt`` (table).
"""

import json
import time

import numpy as np

from conftest import emit
from repro.analysis.reconstruction import project_coefficients
from repro.api import BackendConfig, RunConfig, Session
from repro.data.burgers import BurgersProblem
from repro.postprocessing.report import format_table
from repro.serving import ModeBaseStore

NX, NT, K = 2048, 120, 8
N_QUERIES, QUERY_WIDTH = 48, 4
WINDOWS = (1, 8, 48)
SHARDS = (1, 2, 4)


def publish_basis(tmpdir, data):
    """One-shot SVD of the record published as the served basis."""
    u, s, _ = np.linalg.svd(data, full_matrices=False)
    store = ModeBaseStore(tmpdir)
    store.publish("burgers", u[:, :K], s[:K])
    return store


def serve_log(store, queries, nranks, window):
    """Run the query log through a fresh engine; returns (elapsed, stats,
    answers) from rank 0."""

    def job(session):
        engine = session.query_engine(store, flush_threshold=window)
        start = time.perf_counter()
        tickets = [engine.submit_project("burgers", q) for q in queries]
        engine.flush()
        elapsed = time.perf_counter() - start
        return elapsed, engine.stats(), [t.result() for t in tickets]

    cfg = RunConfig(backend=BackendConfig(name="threads", size=nranks))
    return Session.run(cfg, job)[0]


def test_serving_throughput(benchmark, artifacts_dir, tmp_path):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    store = publish_basis(tmp_path / "store", data)
    base = store.get("burgers")
    rng = np.random.default_rng(3)
    queries = [
        data[:, rng.integers(0, NT, size=QUERY_WIDTH)]
        for _ in range(N_QUERIES)
    ]
    reference = [project_coefficients(base.modes, q) for q in queries]

    benchmark(lambda: serve_log(store, queries, 2, max(WINDOWS)))

    records, rows = [], []
    for nranks in SHARDS:
        for window in WINDOWS:
            elapsed, stats, answers = serve_log(store, queries, nranks, window)
            worst = max(
                float(np.max(np.abs(got - ref)))
                for got, ref in zip(answers, reference)
            )
            assert worst < 1e-10, (
                f"{nranks} shards / window {window}: deviation {worst}"
            )
            qps = N_QUERIES / max(elapsed, 1e-9)
            records.append(
                {
                    "shards": nranks,
                    "window": window,
                    "queries": N_QUERIES,
                    "query_width": QUERY_WIDTH,
                    "gemms": stats["gemms"],
                    "collectives": stats["collectives"],
                    "flushes": stats["flushes"],
                    "queries_per_s": qps,
                    "worst_abs_deviation": worst,
                }
            )
            rows.append(
                [nranks, window, stats["gemms"], stats["flushes"], f"{qps:.0f}"]
            )
            # Coalescing contract: one GEMM per full window (+1 partial).
            expected_gemms = -(-N_QUERIES // window)
            assert stats["gemms"] == expected_gemms

    payload = {
        "bench": "serving_throughput",
        "nx": NX,
        "nt": NT,
        "modes": K,
        "backend": "threads",
        "records": records,
    }
    (artifacts_dir / "serving_throughput.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(
        artifacts_dir,
        "serving_throughput.txt",
        f"Serving throughput (Burgers {NX}x{NT}, K={K}, {N_QUERIES} "
        f"projection queries of width {QUERY_WIDTH})\n"
        + format_table(
            ["shards", "window", "gemms", "flushes", "queries_per_s"], rows
        ),
    )

    # Micro-batching must strictly reduce distributed GEMM count.
    by_window = {r["window"]: r for r in records if r["shards"] == 2}
    assert by_window[max(WINDOWS)]["gemms"] < by_window[1]["gemms"]
