"""Ablation A5: gather-based (paper Listing 4) vs tree TSQR.

Both variants produce identical factors (canonical signs), but their
communication differs: the gather variant ships every rank's R to rank 0
(volume linear in p at the root), the tree variant reduces pairwise
(log2(p) rounds, constant per-rank volume).  This bench verifies numerical
agreement and reports the measured per-rank traffic of each variant.
"""

import numpy as np

from conftest import emit
from repro.core.tsqr import tsqr_gather, tsqr_tree
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table
from repro.smpi import run_spmd
from repro.utils.partition import block_partition

M, N = 4096, 30
RANK_COUNTS = [2, 4, 8]


def run_variant(data, nranks, variant):
    fn = tsqr_gather if variant == "gather" else tsqr_tree

    def job(comm):
        part = block_partition(M, comm.size)
        return fn(comm, data[part.slice_of(comm.rank), :])

    results, tracers = run_spmd(nranks, job, trace=True)
    q = np.concatenate([r[0] for r in results], axis=0)
    root_bytes = tracers[0].summary().total_bytes
    max_nonroot = max(
        (t.summary().total_bytes for t in tracers[1:]), default=0
    )
    return q, results[0][1], root_bytes, max_nonroot


def test_tsqr_variants(benchmark, artifacts_dir):
    rng = np.random.default_rng(3)
    data = rng.standard_normal((M, N))

    benchmark(run_variant, data, 4, "gather")

    rows = []
    root_gather, root_tree = [], []
    for p in RANK_COUNTS:
        qg, rg, g_root, g_nonroot = run_variant(data, p, "gather")
        qt, rt, t_root, t_nonroot = run_variant(data, p, "tree")
        agreement = float(np.max(np.abs(qg - qt)))
        assert np.allclose(rg, rt, atol=1e-9)
        assert agreement < 1e-7
        rows.append([p, g_root, t_root, g_nonroot, t_nonroot, agreement])
        root_gather.append(g_root)
        root_tree.append(t_root)

    save_series_csv(
        artifacts_dir / "tsqr_variants.csv",
        {
            "ranks": np.array(RANK_COUNTS, dtype=float),
            "gather_root_bytes": np.array(root_gather, dtype=float),
            "tree_root_bytes": np.array(root_tree, dtype=float),
        },
    )
    emit(
        artifacts_dir,
        "tsqr_variants.txt",
        f"Ablation A5: TSQR variants ({M}x{N} matrix)\n"
        + format_table(
            [
                "ranks",
                "gather:root_bytes",
                "tree:root_bytes",
                "gather:max_nonroot",
                "tree:max_nonroot",
                "max|Q_g - Q_t|",
            ],
            rows,
        ),
    )

    # shape: the gather variant's root traffic grows linearly with p; the
    # tree variant's root traffic grows much slower (log2 p rounds)
    assert root_gather[-1] > root_gather[0] * 3  # ~linear 2->8
    assert root_tree[-1] < root_gather[-1]
