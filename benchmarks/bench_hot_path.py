"""Hot-path allocation + throughput bench: workspace fast lane vs seed path.

The zero-copy / workspace-reuse PR claims the per-step *constant* of the
streaming update is allocator-free in steady state: the fused
scale-and-concat, the TSQR correction GEMM and the updated local modes all
land in persistent buffers, broadcasts share one frozen snapshot instead of
``p - 1`` deep copies, and ``gatherv_rows`` assembles into a preallocated
output.  This bench measures, per ``backend x rank-count x batch`` cell:

* **bytes/step** — aggregate tracemalloc peak-over-baseline per streaming
  step (all ranks; the in-process backends share one heap), and
* **steps/s** — wall-clock streaming throughput (measured untraced),

for the fast lane (``workspace=True``, default) against the seed
allocation-per-step path (``workspace=False``), and emits
``BENCH_hot_path.json``.  The committed copy of that file at the repo root
is the regression baseline CI compares against (>25% bytes/step growth on
the acceptance cell fails).

Acceptance cell: threads backend, 4 ranks, K=10, 20 streaming batches —
asserted here to allocate >= 2x less per step than the seed path.
"""

import json
import pathlib
import time
import tracemalloc

import numpy as np

from conftest import emit
from repro import ParSVDParallel
from repro.postprocessing.report import format_table
from repro.smpi import run_backend
from repro.utils.partition import block_partition

M = 4096
K = 10
N_STEPS = 20

#: backend x rank-count x batch sweep; the first cell is the acceptance
#: configuration from the PR issue.
CONFIGS = [
    ("threads", 4, 20),
    ("threads", 2, 10),
    ("self", 1, 20),
]


def make_data(batch):
    rng = np.random.default_rng(7)
    n_cols = batch * (N_STEPS + 1)
    left = rng.standard_normal((M, 8))
    right = rng.standard_normal((8, n_cols))
    return left @ right + 1e-6 * rng.standard_normal((M, n_cols))


def streaming_job(data, batch, workspace, measure_alloc):
    """SPMD job streaming N_STEPS batches; rank 0 optionally samples
    tracemalloc around each (barrier-fenced) step."""

    def job(comm):
        part = block_partition(M, comm.size)
        block = np.ascontiguousarray(data[part.slice_of(comm.rank), :])
        svd = ParSVDParallel(comm, K=K, ff=0.95, workspace=workspace)
        svd.initialize(block[:, :batch])
        per_step = []
        for step in range(N_STEPS):
            lo = (step + 1) * batch
            if measure_alloc:
                comm.barrier()
                if comm.rank == 0:
                    tracemalloc.reset_peak()
                    before = tracemalloc.get_traced_memory()[0]
                comm.barrier()
            svd.incorporate_data(block[:, lo : lo + batch])
            if measure_alloc:
                comm.barrier()
                if comm.rank == 0:
                    _, peak = tracemalloc.get_traced_memory()
                    per_step.append(peak - before)
        return per_step, svd.singular_values

    return job


def measure(backend, nranks, batch, workspace):
    data = make_data(batch)

    # Allocation: tracemalloc on, barriers fence each step so rank 0's
    # window covers every rank's allocations (shared in-process heap).
    # The first few steps warm the workspace/BLAS buffers; average the
    # steady-state tail.
    tracemalloc.start()
    try:
        results = run_backend(
            backend,
            nranks,
            streaming_job(data, batch, workspace, measure_alloc=True),
        )
    finally:
        tracemalloc.stop()
    per_step = results[0][0]
    bytes_per_step = float(np.mean(per_step[5:]))

    # Throughput: same stream, no tracemalloc (it dominates otherwise);
    # best of 5 repetitions to shed scheduler noise.
    elapsed = []
    for _ in range(5):
        start = time.perf_counter()
        results = run_backend(
            backend,
            nranks,
            streaming_job(data, batch, workspace, measure_alloc=False),
        )
        elapsed.append(time.perf_counter() - start)
    steps_per_s = N_STEPS / min(elapsed)
    return bytes_per_step, steps_per_s, results[0][1]


def test_hot_path(benchmark, artifacts_dir):
    cells = []
    rows = []
    for backend, nranks, batch in CONFIGS:
        fast_bytes, fast_rate, fast_sv = measure(backend, nranks, batch, True)
        seed_bytes, seed_rate, seed_sv = measure(backend, nranks, batch, False)
        # Same numbers out of both lanes (the equality tests pin 1e-12;
        # here it guards the bench itself against divergence).
        assert np.max(np.abs(fast_sv - seed_sv)) <= 1e-10
        reduction = seed_bytes / max(fast_bytes, 1.0)
        speedup = fast_rate / seed_rate
        cells.append(
            {
                "backend": backend,
                "nranks": nranks,
                "K": K,
                "batch": batch,
                "n_steps": N_STEPS,
                "n_dof": M,
                "fast": {
                    "bytes_per_step": fast_bytes,
                    "steps_per_s": fast_rate,
                },
                "seed": {
                    "bytes_per_step": seed_bytes,
                    "steps_per_s": seed_rate,
                },
                "bytes_reduction": reduction,
                "speedup": speedup,
            }
        )
        rows.append(
            [
                f"{backend} x{nranks} b{batch}",
                f"{fast_bytes / 1024:.0f} KiB",
                f"{seed_bytes / 1024:.0f} KiB",
                f"{reduction:.1f}x",
                f"{fast_rate:.1f}",
                f"{seed_rate:.1f}",
                f"{speedup:.2f}x",
            ]
        )

    payload = {"bench": "hot_path", "n_dof": M, "K": K, "cells": cells}
    (artifacts_dir / "BENCH_hot_path.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(
        artifacts_dir,
        "hot_path.txt",
        f"Streaming hot path: workspace fast lane vs seed path "
        f"(n_dof={M}, K={K}, {N_STEPS} steps)\n"
        + format_table(
            [
                "config",
                "fast B/step",
                "seed B/step",
                "reduction",
                "fast steps/s",
                "seed steps/s",
                "speedup",
            ],
            rows,
        ),
    )

    # Acceptance cell (threads, 4 ranks, K=10, 20 batches): the fast lane
    # must allocate at least 2x less per step than the pre-PR path
    # (measured ~14x; hard-asserted because tracemalloc is stable).  The
    # speedup (typically ~1.1x here) is recorded in the JSON; the assert
    # is only a catastrophic-regression canary because wall-clock on a
    # shared 4-thread CI box jitters +-20%.
    acceptance = cells[0]
    assert acceptance["bytes_reduction"] >= 2.0
    assert acceptance["speedup"] > 0.75

    # Timed kernel for pytest-benchmark: one steady-state fast-lane stream.
    data = make_data(CONFIGS[0][2])
    benchmark(
        lambda: run_backend(
            CONFIGS[0][0],
            CONFIGS[0][1],
            streaming_job(data, CONFIGS[0][2], True, measure_alloc=False),
        )
    )


def check_against_baseline(
    artifact_path, baseline_path, tolerance=0.25
):
    """Fail (exit 1) if bytes/step on the acceptance cell regressed more
    than ``tolerance`` vs the committed baseline.  Used by the CI smoke.
    """
    artifact = json.loads(pathlib.Path(artifact_path).read_text())
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    measured = artifact["cells"][0]["fast"]["bytes_per_step"]
    allowed = baseline["cells"][0]["fast"]["bytes_per_step"] * (1 + tolerance)
    print(
        f"hot-path bytes/step: measured {measured:.0f}, "
        f"baseline allows <= {allowed:.0f}"
    )
    if measured > allowed:
        raise SystemExit(
            f"hot-path allocation regression: {measured:.0f} B/step exceeds "
            f"baseline {allowed:.0f} B/step (+{tolerance:.0%})"
        )


if __name__ == "__main__":
    import sys

    check_against_baseline(*sys.argv[1:])
