"""Hot-path allocation + throughput bench: fast lane, seed path, overlap.

The zero-copy / workspace-reuse PR claims the per-step *constant* of the
streaming update is allocator-free in steady state; the pipelined-engine
PR adds the overlap dimension: fused single-message TSQR replies with
preposted receives, the small-matrices-first correction fold (one tall
GEMM per rank per step), and `overlap=True` deferred completion.  This
bench measures, per ``backend x rank-count x batch`` cell and per lane:

* **bytes/step** — aggregate tracemalloc peak-over-baseline per streaming
  step (all ranks; the in-process backends share one heap), and
* **steps/s** — wall-clock streaming throughput (measured untraced),

for three lanes: ``fast`` (``workspace=True``, default), ``seed``
(``workspace=False``, fresh allocations per step) and ``overlap``
(``workspace=True, overlap=True``, collectives in flight across steps),
and emits ``BENCH_hot_path.json``.  The committed copy of that file at
the repo root is the regression baseline CI compares against — both
bytes/step and the throughput *ratios* (machine-independent) are gated.
Each cell additionally carries a ``phases`` rollup (schema v1) from one
obs-traced run — informational only, never gated.

Acceptance cell: threads backend, 4 ranks, K=10, 20 streaming batches.
"""

import json
import pathlib
import time
import tracemalloc

import numpy as np

from conftest import emit
from repro.api import (
    BackendConfig,
    ObservabilityConfig,
    RunConfig,
    Session,
    SolverConfig,
)
from repro.obs import runtime as obs_runtime
from repro.postprocessing.report import format_table
from repro.utils.partition import block_partition

M = 4096
K = 10
N_STEPS = 20

#: backend x rank-count x batch sweep; the first cell is the acceptance
#: configuration from the PR issue.
CONFIGS = [
    ("threads", 4, 20),
    ("threads", 2, 10),
    ("self", 1, 20),
]

#: lane name -> (workspace, overlap)
LANES = {
    "fast": (True, False),
    "seed": (False, False),
    "overlap": (True, True),
}


def make_data(batch):
    rng = np.random.default_rng(7)
    n_cols = batch * (N_STEPS + 1)
    left = rng.standard_normal((M, 8))
    right = rng.standard_normal((8, n_cols))
    return left @ right + 1e-6 * rng.standard_normal((M, n_cols))


def lane_config(backend, nranks, workspace, overlap):
    """The typed RunConfig of one ``backend x ranks x lane`` cell."""
    return RunConfig(
        solver=SolverConfig(K=K, ff=0.95, workspace=workspace, overlap=overlap),
        backend=BackendConfig(name=backend, size=nranks),
    )


def streaming_job(data, batch, measure_alloc):
    """Per-rank session job streaming N_STEPS batches; rank 0 optionally
    samples tracemalloc around each (barrier-fenced) step."""

    def job(session):
        comm = session.comm
        part = block_partition(M, comm.size)
        block = np.ascontiguousarray(data[part.slice_of(comm.rank), :])
        session.initialize(block[:, :batch])
        per_step = []
        for step in range(N_STEPS):
            lo = (step + 1) * batch
            if measure_alloc:
                comm.barrier()
                if comm.rank == 0:
                    tracemalloc.reset_peak()
                    before = tracemalloc.get_traced_memory()[0]
                comm.barrier()
            session.incorporate_data(block[:, lo : lo + batch])
            if measure_alloc:
                comm.barrier()
                if comm.rank == 0:
                    _, peak = tracemalloc.get_traced_memory()
                    per_step.append(peak - before)
        return per_step, np.array(session.singular_values)

    return job


def measure_alloc_lane(data, backend, nranks, batch, workspace, overlap):
    """bytes/step for one lane (tracemalloc on, barrier-fenced steps so
    rank 0's window covers every rank's allocations — shared in-process
    heap; the barriers also serialize overlap's deferred completion into
    the measured window).  The first few steps warm the workspace/BLAS
    buffers; the steady-state tail is averaged."""
    tracemalloc.start()
    try:
        results = Session.run(
            lane_config(backend, nranks, workspace, overlap),
            streaming_job(data, batch, measure_alloc=True),
        )
    finally:
        tracemalloc.stop()
    per_step = results[0][0]
    return float(np.mean(per_step[5:])), results[0][1]


def measure_rates(data, backend, nranks, batch, reps=5):
    """steps/s per lane, no tracemalloc (it dominates otherwise).

    The lanes are timed *interleaved* — every repetition times each lane
    once, back to back — so slow machine-load drift hits all lanes
    equally and the throughput ratios the CI gate checks stay stable;
    best-of-reps per lane sheds scheduler noise.
    """
    elapsed = {lane: [] for lane in LANES}
    for _ in range(reps):
        for lane, (workspace, overlap) in LANES.items():
            start = time.perf_counter()
            Session.run(
                lane_config(backend, nranks, workspace, overlap),
                streaming_job(data, batch, measure_alloc=False),
            )
            elapsed[lane].append(time.perf_counter() - start)
    return {lane: N_STEPS / min(times) for lane, times in elapsed.items()}


def measure_phases(data, backend, nranks, batch):
    """Per-phase timing rollup of one obs-traced overlapped run.

    A separate run with :mod:`repro.obs` tracing enabled (the measured
    lanes above run with observability *off*, so the bytes/step and
    steps/s numbers are untouched).  Returns the tracer's
    ``phase_summary()`` dict: ``{phase: {count, total_s, mean_s,
    max_s}}``.
    """
    obs_runtime.reset()
    cfg = lane_config(backend, nranks, True, True).replace(
        obs=ObservabilityConfig(metrics=True, trace=True)
    )
    Session.run(cfg, streaming_job(data, batch, measure_alloc=False))
    summary = obs_runtime.default_tracer().phase_summary()
    obs_runtime.reset()
    return summary


def test_hot_path(benchmark, artifacts_dir):
    cells = []
    rows = []
    for backend, nranks, batch in CONFIGS:
        data = make_data(batch)
        lanes = {}
        values = {}
        for lane, (workspace, overlap) in LANES.items():
            lane_bytes, lane_sv = measure_alloc_lane(
                data, backend, nranks, batch, workspace, overlap
            )
            lanes[lane] = {"bytes_per_step": lane_bytes}
            values[lane] = lane_sv
        for lane, rate in measure_rates(data, backend, nranks, batch).items():
            lanes[lane]["steps_per_s"] = rate
        # Same numbers out of every lane (the equality tests pin 1e-12;
        # here it guards the bench itself against divergence).
        assert np.max(np.abs(values["fast"] - values["seed"])) <= 1e-10
        assert np.max(np.abs(values["overlap"] - values["fast"])) <= 1e-10
        reduction = lanes["seed"]["bytes_per_step"] / max(
            lanes["fast"]["bytes_per_step"], 1.0
        )
        speedup = lanes["fast"]["steps_per_s"] / lanes["seed"]["steps_per_s"]
        overlap_speedup = (
            lanes["overlap"]["steps_per_s"] / lanes["fast"]["steps_per_s"]
        )
        cells.append(
            {
                "backend": backend,
                "nranks": nranks,
                "K": K,
                "batch": batch,
                "n_steps": N_STEPS,
                "n_dof": M,
                "fast": lanes["fast"],
                "seed": lanes["seed"],
                "overlap": lanes["overlap"],
                "bytes_reduction": reduction,
                "speedup": speedup,
                "overlap_speedup": overlap_speedup,
                # Additive (schema v1): per-phase wall-clock breakdown of
                # one traced overlapped run; the baseline gate ignores it.
                "phase_timing_schema": 1,
                "phases": measure_phases(data, backend, nranks, batch),
            }
        )
        rows.append(
            [
                f"{backend} x{nranks} b{batch}",
                f"{lanes['fast']['bytes_per_step'] / 1024:.0f} KiB",
                f"{lanes['seed']['bytes_per_step'] / 1024:.0f} KiB",
                f"{reduction:.1f}x",
                f"{lanes['fast']['steps_per_s']:.1f}",
                f"{lanes['seed']['steps_per_s']:.1f}",
                f"{lanes['overlap']['steps_per_s']:.1f}",
                f"{overlap_speedup:.2f}x",
            ]
        )

    payload = {"bench": "hot_path", "n_dof": M, "K": K, "cells": cells}
    (artifacts_dir / "BENCH_hot_path.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(
        artifacts_dir,
        "hot_path.txt",
        f"Streaming hot path: fast lane vs seed path vs overlapped engine "
        f"(n_dof={M}, K={K}, {N_STEPS} steps)\n"
        + format_table(
            [
                "config",
                "fast B/step",
                "seed B/step",
                "reduction",
                "fast steps/s",
                "seed steps/s",
                "overlap steps/s",
                "overlap-vs-fast",
            ],
            rows,
        ),
    )

    # Acceptance cell (threads, 4 ranks, K=10, 20 batches): the fast lane
    # must allocate at least 2x less per step than the seed path, and the
    # overlapped lane must not allocate meaningfully more than the fast
    # lane (its replies are smaller; preposted requests are tiny).  The
    # wall-clock asserts are only catastrophic-regression canaries because
    # a shared CI box jitters +-20%; the precise numbers live in the JSON
    # and are gated against the committed baseline by check_against_baseline.
    acceptance = cells[0]
    assert acceptance["bytes_reduction"] >= 2.0
    assert acceptance["speedup"] > 0.75
    assert acceptance["overlap_speedup"] > 0.75
    assert (
        acceptance["overlap"]["bytes_per_step"]
        <= 1.5 * acceptance["fast"]["bytes_per_step"] + 65536
    )

    # Timed kernel for pytest-benchmark: one steady-state overlapped stream.
    data = make_data(CONFIGS[0][2])
    benchmark(
        lambda: Session.run(
            lane_config(CONFIGS[0][0], CONFIGS[0][1], True, True),
            streaming_job(data, CONFIGS[0][2], measure_alloc=False),
        )
    )


def check_against_baseline(artifact_path, baseline_path, tolerance=0.25):
    """Fail (exit 1) on hot-path regressions vs the committed baseline.

    Gated on the acceptance cell (threads, 4 ranks, K=10):

    * ``fast`` bytes/step must stay within ``tolerance`` (+25%) of the
      baseline — allocation counts are machine-independent;
    * throughput must not regress.  Raw steps/s are not comparable
      across machines, so the gate checks the *ratios* measured within
      one (lane-interleaved) bench run against the baseline's:
      ``overlap_speedup`` (overlap vs fast — the pipelined engine's
      steps/s) at the issue's 15% floor, and ``speedup`` (fast vs seed)
      at a wider 25% floor — that ratio is only ~1.1x to begin with, so
      15% of it sits inside a shared box's wall-clock jitter.
    """
    artifact = json.loads(pathlib.Path(artifact_path).read_text())
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    cell = artifact["cells"][0]
    base = baseline["cells"][0]
    failures = []

    measured = cell["fast"]["bytes_per_step"]
    allowed = base["fast"]["bytes_per_step"] * (1 + tolerance)
    print(
        f"hot-path bytes/step: measured {measured:.0f}, "
        f"baseline allows <= {allowed:.0f}"
    )
    if measured > allowed:
        failures.append(
            f"allocation regression: {measured:.0f} B/step exceeds "
            f"baseline {allowed:.0f} B/step (+{tolerance:.0%})"
        )

    for ratio, steps_tolerance in (("overlap_speedup", 0.15), ("speedup", 0.25)):
        measured_ratio = cell[ratio]
        floor = base[ratio] * (1 - steps_tolerance)
        print(
            f"hot-path {ratio}: measured {measured_ratio:.3f}, "
            f"baseline requires >= {floor:.3f}"
        )
        if measured_ratio < floor:
            failures.append(
                f"steps/s regression: {ratio} {measured_ratio:.3f} fell "
                f">{steps_tolerance:.0%} below baseline {base[ratio]:.3f}"
            )

    if failures:
        raise SystemExit("hot-path regression gate: " + "; ".join(failures))


if __name__ == "__main__":
    import sys

    check_against_baseline(*sys.argv[1:])
