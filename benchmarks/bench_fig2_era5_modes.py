"""Figure 2: coherent structures of the ERA5 surface-pressure record.

Paper setup: ERA5 global surface pressure, 2013-2020 at 6-hourly cadence,
read through parallel NetCDF4-IO, parallel streaming SVD, first two modes
plotted on the globe.

Reproduction (per DESIGN.md): a synthetic pressure field with *planted*
coherent structures — an annual hemispheric see-saw plus a travelling
planetary wave — written to the repo's snapshot container and read back
with per-rank windowed reads.  Because the generating structures are known,
this bench asserts what the paper's figure could only show visually: the
leading modes recover the planted structures, energy-ordered.
"""

import numpy as np

from conftest import emit
from repro.analysis.coherent import extract_coherent_structures
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.data.era5_like import Era5LikeField
from repro.data.io import write_snapshot_dataset
from repro.postprocessing.plots import ascii_field, save_series_csv

NLAT, NLON, NT, BATCH, NRANKS, K = 24, 48, 360, 60, 4, 6


def build_field():
    # 6-hourly cadence like the paper; record length reduced for bench time
    return Era5LikeField(
        nlat=NLAT, nlon=NLON, nt=NT, dt_hours=6.0, noise_amp=0.4, seed=11
    )


def run_pipeline(dataset_path):
    # The container is the configured stream source: each rank reads,
    # row-restricts and batches it through the session's plumbing.
    cfg = RunConfig(
        solver=SolverConfig(
            K=K, ff=1.0, r1=50,
            low_rank=True, oversampling=10, power_iters=2, seed=0,
        ),
        backend=BackendConfig(name="threads", size=NRANKS),
        stream=StreamConfig(source=str(dataset_path), batch=BATCH),
    )

    def job(session):
        res = session.fit_stream().result()
        return res.modes, res.singular_values

    return Session.run(cfg, job)[0]


def test_fig2_era5_coherent_structures(benchmark, artifacts_dir, tmp_path_factory):
    field = build_field()
    path = tmp_path_factory.mktemp("fig2") / "pressure.rsnap"
    write_snapshot_dataset(
        path,
        field.anomaly_snapshots(),
        meta={"field": "surface_pressure_anomaly", "cadence_hours": 6.0},
    )

    modes, values = benchmark(run_pipeline, path)

    cos_map, sin_map = field.wave_patterns()[0]
    truth = {
        "seasonal": field.seasonal_pattern().ravel(),
        "wave4": np.column_stack([cos_map.ravel(), sin_map.ravel()]),
    }
    report = extract_coherent_structures(
        modes, values, ground_truth=truth, n_modes=3
    )

    mode1 = modes[:, 0].reshape(NLAT, NLON)
    mode2 = modes[:, 1].reshape(NLAT, NLON)
    save_series_csv(
        artifacts_dir / "fig2_era5_spectrum.csv",
        {
            "mode": np.arange(1, K + 1, dtype=float),
            "sigma": values[:K],
        },
    )
    lines = [
        "Figure 2 reproduction: ERA5-like pressure modes (parallel IO + streaming SVD)",
        f"  grid={NLAT}x{NLON}, snapshots={NT} @6h, ranks={NRANKS}, K={K}",
        "",
        *report.summary_lines(),
        "",
        ascii_field(mode1, title="(a) Mode 1", height=16, width=64),
        "",
        ascii_field(mode2, title="(b) Mode 2", height=16, width=64),
    ]
    emit(artifacts_dir, "fig2_era5_modes.txt", "\n".join(lines))

    # paper shape: the leading modes are the physically coherent structures
    assert report.dominant_structure(0)[0] == "seasonal"
    assert report.dominant_structure(0)[1] > 0.9
    assert report.dominant_structure(1)[0] == "wave4"
    assert report.dominant_structure(1)[1] > 0.9
    assert np.all(np.diff(values) <= 0)
