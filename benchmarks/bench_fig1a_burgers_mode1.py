"""Figure 1(a): serial vs parallel+randomized SVD — Burgers mode 1.

Paper setup: viscous Burgers, Re=1000, 16384 grid points, 800 snapshots,
parallel run on 4 ranks, first singular vector compared against the serial
evaluation; the figure shows the two curves on top of each other with a low
pointwise error.

Bench setup: identical physics at a reduced grid (2048 x 400) so the bench
runs in seconds; the validated quantity (mode agreement) is resolution-
independent.  Expected shape: mode-1 relative error ≪ 1 (paper: "accurate
results ... with a low error magnitude").
"""

import numpy as np

from conftest import emit
from repro import ParSVDSerial
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.core.metrics import mode_error_curve, mode_errors
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import plot_mode_comparison, save_series_csv
from repro.utils.linalg import align_signs

NX, NT, K, BATCH, NRANKS = 2048, 400, 10, 100, 4
MODE = 0  # figure 1(a): mode 1


def compute_serial(data):
    svd = ParSVDSerial(K=K, ff=0.95)
    svd.initialize(data[:, :BATCH])
    for start in range(BATCH, NT, BATCH):
        svd.incorporate_data(data[:, start : start + BATCH])
    return svd.modes, svd.singular_values


def compute_parallel(data):
    cfg = RunConfig(
        solver=SolverConfig(
            K=K, ff=0.95, r1=50,
            low_rank=True, oversampling=10, power_iters=2, seed=0,
        ),
        backend=BackendConfig(name="threads", size=NRANKS),
        stream=StreamConfig(batch=BATCH),
    )

    def job(session):
        res = session.fit_stream(data).result()
        return res.modes, res.singular_values

    return Session.run(cfg, job)[0]


def test_fig1a_mode1_serial_vs_parallel(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    serial_modes, serial_values = compute_serial(data)

    parallel_modes, parallel_values = benchmark(compute_parallel, data)

    errors = mode_errors(serial_modes, parallel_modes)
    curve = mode_error_curve(serial_modes, parallel_modes, MODE)
    aligned = align_signs(serial_modes, parallel_modes)

    save_series_csv(
        artifacts_dir / "fig1a_mode1.csv",
        {
            "x": np.linspace(0, 1, NX),
            "serial_mode1": serial_modes[:, MODE],
            "parallel_mode1": aligned[:, MODE],
            "error": curve,
        },
    )
    lines = [
        "Figure 1(a) reproduction: Burgers mode 1, serial vs parallel(4 ranks, randomized)",
        f"  grid={NX}, snapshots={NT}, K={K}, ff=0.95, r1=50",
        f"  mode-1 relative L2 error : {errors[MODE]:.3e}",
        f"  max pointwise |error|    : {np.max(np.abs(curve)):.3e}",
        f"  sigma1 serial/parallel   : {serial_values[MODE]:.6e} / {parallel_values[MODE]:.6e}",
        "",
        plot_mode_comparison(serial_modes, parallel_modes, MODE),
    ]
    emit(artifacts_dir, "fig1a_mode1.txt", "\n".join(lines))

    # paper shape: parallel matches serial with low error magnitude
    assert errors[MODE] < 1e-3
