"""Figure 1(b): serial vs parallel+randomized SVD — Burgers mode 2.

Same experiment as Figure 1(a) but validating the *second* singular vector;
see bench_fig1a_burgers_mode1.py for setup notes.  Expected shape: mode-2
error small but (being less energetic) typically above the mode-1 error.
"""

import numpy as np

from bench_fig1a_burgers_mode1 import (
    BATCH,
    K,
    NT,
    NX,
    compute_parallel,
    compute_serial,
)
from conftest import emit
from repro.core.metrics import mode_error_curve, mode_errors
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import plot_mode_comparison, save_series_csv
from repro.utils.linalg import align_signs

MODE = 1  # figure 1(b): mode 2


def test_fig1b_mode2_serial_vs_parallel(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    serial_modes, serial_values = compute_serial(data)

    parallel_modes, parallel_values = benchmark(compute_parallel, data)

    errors = mode_errors(serial_modes, parallel_modes)
    curve = mode_error_curve(serial_modes, parallel_modes, MODE)
    aligned = align_signs(serial_modes, parallel_modes)

    save_series_csv(
        artifacts_dir / "fig1b_mode2.csv",
        {
            "x": np.linspace(0, 1, NX),
            "serial_mode2": serial_modes[:, MODE],
            "parallel_mode2": aligned[:, MODE],
            "error": curve,
        },
    )
    lines = [
        "Figure 1(b) reproduction: Burgers mode 2, serial vs parallel(4 ranks, randomized)",
        f"  grid={NX}, snapshots={NT}, K={K}, ff=0.95, r1=50",
        f"  mode-2 relative L2 error : {errors[MODE]:.3e}",
        f"  max pointwise |error|    : {np.max(np.abs(curve)):.3e}",
        f"  sigma2 serial/parallel   : {serial_values[MODE]:.6e} / {parallel_values[MODE]:.6e}",
        "",
        plot_mode_comparison(serial_modes, parallel_modes, MODE),
    ]
    emit(artifacts_dir, "fig1b_mode2.txt", "\n".join(lines))

    assert errors[MODE] < 1e-2
