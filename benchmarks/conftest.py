"""Shared infrastructure for the benchmark harness.

Every bench regenerates one figure/table of the paper (see DESIGN.md's
experiment index).  Benches both:

* time their core operation through ``pytest-benchmark`` (run with
  ``pytest benchmarks/ --benchmark-only``), and
* emit the series/tables the paper's figure plots into
  ``benchmarks/artifacts/`` (CSV + text), so the "paper vs measured"
  comparison in EXPERIMENTS.md can be regenerated from scratch.
"""

from __future__ import annotations

import pathlib

import pytest

ARTIFACTS = pathlib.Path(__file__).parent / "artifacts"


@pytest.fixture(scope="session")
def artifacts_dir() -> pathlib.Path:
    ARTIFACTS.mkdir(exist_ok=True)
    return ARTIFACTS


def emit(artifacts_dir: pathlib.Path, name: str, text: str) -> None:
    """Write a text artifact and echo it to stdout (visible with -s)."""
    path = artifacts_dir / name
    path.write_text(text + "\n")
    print(f"\n[artifact: {path}]")
    print(text)
