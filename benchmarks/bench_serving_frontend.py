"""HTTP serving-frontend load bench: queries/sec vs concurrency, p50/p99.

Drives a live :class:`repro.net.NetServer` over real sockets with
concurrent closed-loop clients (one :class:`ServingClient` per worker
thread — the underlying ``http.client`` connection is not thread-safe)
and measures, per concurrency level, submit-to-result round-trip
latency percentiles and queries/sec.  A second, pipelined phase submits
a burst of unique queries, collects them, then replays the identical
payloads to exercise the keyed result cache: the replay must hit on
every query (fulfilled at submit, no GEMM, no deadline wait).

Emits ``BENCH_serving_frontend.json``.  The committed copy at the repo
root is the regression baseline; ``check_against_baseline`` gates only
machine-independent quantities:

* ``cache_hit_ratio`` — the replay phase must hit on (essentially)
  every query; a drop means the cache key or eviction policy broke;
* ``batching_ratio`` — queries coalesced per flush in the pipelined
  burst; a collapse means the watermark/deadline flushing degenerated
  into per-query flushes;
* ``cache_speedup`` — cached vs uncached pipelined throughput, measured
  back-to-back in one run so machine speed cancels; gated with a wide
  floor because the cached phase is pure HTTP overhead;
* zero transport/validation errors anywhere.

Raw qps and latency percentiles are recorded for trending but never
gated — they are machine-dependent.

Modes::

    pytest bench_serving_frontend.py --benchmark-disable   # full bench
    REPRO_BENCH_SMOKE=1 python bench_serving_frontend.py \
        --drive http://127.0.0.1:8080 out.json             # CI smoke vs URL
    python bench_serving_frontend.py artifacts/X.json ../X.json  # gate
"""

import json
import os
import pathlib
import threading
import time

import numpy as np

from conftest import emit
from repro.analysis.reconstruction import project_coefficients
from repro.api import BackendConfig, RunConfig, ServingConfig, SolverConfig
from repro.net import ServingClient, start_in_thread
from repro.postprocessing.report import format_table
from repro.serving import ModeBaseStore

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: --drive mode can point at any server; the served basis name and its
#: row count then come from the environment (the in-process bench
#: publishes its own).
BASIS = os.environ.get("REPRO_BENCH_BASIS", "bench")
NDOF = int(os.environ.get("REPRO_BENCH_NDOF", "256"))
K = 6
FLUSH_DEADLINE_MS = 20.0
MAX_BATCH = 16
CONCURRENCY = (1, 2) if SMOKE else (1, 4, 8)
N_PER_WORKER = 6 if SMOKE else 24
PIPELINE_WORKERS = 2 if SMOKE else 8
PIPELINE_PER_WORKER = 4 if SMOKE else 12


def publish_basis(tmpdir):
    rng = np.random.default_rng(17)
    u, _ = np.linalg.qr(rng.standard_normal((NDOF, K)))
    store = ModeBaseStore(tmpdir)
    store.publish("bench", u, np.linspace(1.0, 0.1, K))
    return store, u


def run_workers(n, body):
    """Run ``body(worker_index)`` on n threads; re-raise the first error."""
    errors = []

    def wrap(i):
        try:
            body(i)
        except BaseException as exc:  # noqa: BLE001 — surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


def closed_loop_cell(url, concurrency, n_per_worker, seed):
    """Each worker submits one query and long-polls its result before
    submitting the next.  Returns the cell record with p50/p99 latency
    (ms) and aggregate queries/sec."""
    latencies = [[] for _ in range(concurrency)]
    failures = [0] * concurrency

    def body(i):
        rng = np.random.default_rng(seed + i)
        with ServingClient.from_url(url) as client:
            for _ in range(n_per_worker):
                payload = rng.standard_normal((NDOF, 1))
                t0 = time.perf_counter()
                try:
                    client.result(
                        client.submit(BASIS, payload), wait=30.0
                    )
                except Exception:  # noqa: BLE001 — counted, then gated
                    failures[i] += 1
                    continue
                latencies[i].append(time.perf_counter() - t0)

    start = time.perf_counter()
    run_workers(concurrency, body)
    elapsed = time.perf_counter() - start
    flat = np.array([lat for per in latencies for lat in per])
    n_ok = int(flat.size)
    return {
        "concurrency": concurrency,
        "queries": concurrency * n_per_worker,
        "completed": n_ok,
        "errors": int(sum(failures)),
        "queries_per_s": n_ok / max(elapsed, 1e-9),
        "p50_ms": float(np.percentile(flat, 50)) * 1e3 if n_ok else None,
        "p99_ms": float(np.percentile(flat, 99)) * 1e3 if n_ok else None,
    }


def pipelined_phase(url, metrics_of):
    """Burst-submit unique payloads, collect, then replay them verbatim.

    Phase 1 (uncached): every worker submits its whole query log before
    collecting any result, so the server coalesces the backlog into
    watermark-sized flushes.  Phase 2 (cached): the identical payloads
    again — each submit must come back ``done`` from the result cache.
    Returns the phase record with the three gated ratios.
    """
    n = PIPELINE_WORKERS
    payloads = [
        [
            np.random.default_rng(1000 + 100 * i + j).standard_normal(
                (NDOF, 1)
            )
            for j in range(PIPELINE_PER_WORKER)
        ]
        for i in range(n)
    ]
    results = [[None] * PIPELINE_PER_WORKER for _ in range(n)]

    def uncached(i):
        with ServingClient.from_url(url) as client:
            jobs = [client.submit(BASIS, p) for p in payloads[i]]
            for j, job in enumerate(jobs):
                results[i][j] = client.result(job, wait=30.0)

    cached_hits = [0] * n

    def cached(i):
        with ServingClient.from_url(url) as client:
            for j, p in enumerate(payloads[i]):
                reply = client.submit(BASIS, p)
                if reply["status"] == "done" and reply.get("cached"):
                    cached_hits[i] += 1
                got = client.result(reply, wait=30.0)
                assert np.array_equal(np.asarray(got), results[i][j])

    before = metrics_of()
    start = time.perf_counter()
    run_workers(n, uncached)
    uncached_s = time.perf_counter() - start
    mid = metrics_of()
    start = time.perf_counter()
    run_workers(n, cached)
    cached_s = time.perf_counter() - start
    after = metrics_of()

    total = n * PIPELINE_PER_WORKER
    flushes = mid["engine"]["flushes"] - before["engine"]["flushes"]
    replay_hits = (
        after["engine"]["result_cache_hits"]
        - mid["engine"]["result_cache_hits"]
    )
    uncached_qps = total / max(uncached_s, 1e-9)
    cached_qps = total / max(cached_s, 1e-9)
    return {
        "concurrency": n,
        "queries": total,
        "uncached_qps": uncached_qps,
        "cached_qps": cached_qps,
        "cache_speedup": cached_qps / max(uncached_qps, 1e-9),
        "cache_hit_ratio": sum(cached_hits) / total,
        "server_cache_hits": replay_hits,
        "flushes": flushes,
        "batching_ratio": total / max(flushes, 1),
        "errors": after["server"]["errors"] - before["server"]["errors"],
    }, payloads, results


def drive(url):
    """Run the whole load suite against a live server at ``url``.

    Shared by the in-process pytest bench and the CI ``serve-smoke`` job
    (``--drive http://... out.json``), which points it at a separately
    launched ``repro serve`` process.
    """
    probe = ServingClient.from_url(url)
    try:
        health_status, health = probe.healthz()
        metrics = probe.metrics()
        assert "engine" in metrics and "registry" in metrics, sorted(metrics)

        cells = [
            closed_loop_cell(url, c, N_PER_WORKER, seed=7 * (1 + c))
            for c in CONCURRENCY
        ]
        pipeline, payloads, results = pipelined_phase(url, probe.metrics)
        final = probe.metrics()
    finally:
        probe.close()

    return {
        "bench": "serving_frontend",
        "smoke": SMOKE,
        "ndof": NDOF,
        "K": K,
        "flush_deadline_ms": FLUSH_DEADLINE_MS,
        "max_batch": MAX_BATCH,
        "healthz": {"status": health_status, "state": health.get("status")},
        "closed_loop": cells,
        "pipelined": pipeline,
        "engine_totals": {
            key: final["engine"][key]
            for key in (
                "queries",
                "flushes",
                "deadline_flushes",
                "result_cache_hits",
                "result_cache_misses",
            )
        },
    }, payloads, results


def render(payload):
    rows = [
        [
            cell["concurrency"],
            cell["queries"],
            f"{cell['queries_per_s']:.0f}",
            f"{cell['p50_ms']:.1f}",
            f"{cell['p99_ms']:.1f}",
            cell["errors"],
        ]
        for cell in payload["closed_loop"]
    ]
    pipe = payload["pipelined"]
    return (
        f"HTTP serving frontend (ndof={payload['ndof']}, K={payload['K']}, "
        f"deadline={payload['flush_deadline_ms']}ms, "
        f"max_batch={payload['max_batch']})\n"
        + format_table(
            ["clients", "queries", "qps", "p50 ms", "p99 ms", "errors"],
            rows,
        )
        + (
            f"\npipelined x{pipe['concurrency']}: "
            f"uncached {pipe['uncached_qps']:.0f} qps over "
            f"{pipe['flushes']} flushes "
            f"({pipe['batching_ratio']:.1f} queries/flush), "
            f"replay {pipe['cached_qps']:.0f} qps with "
            f"{pipe['cache_hit_ratio']:.0%} cache hits "
            f"({pipe['cache_speedup']:.1f}x)"
        )
    )


def test_serving_frontend(benchmark, artifacts_dir, tmp_path):
    store, modes = publish_basis(tmp_path / "store")
    cfg = RunConfig(
        solver=SolverConfig(K=K, ff=1.0),
        backend=BackendConfig(name="self"),
        serving=ServingConfig(
            port=0,
            flush_deadline_ms=FLUSH_DEADLINE_MS,
            max_batch=MAX_BATCH,
            result_cache_entries=1024,
        ),
    )
    handle = start_in_thread(store, cfg)
    try:
        payload, pipeline_payloads, pipeline_results = drive(handle.url)

        # Correctness: the HTTP answers of the pipelined burst match the
        # serial projection reference to 1e-10.
        worst = max(
            float(
                np.max(
                    np.abs(
                        np.asarray(got) - project_coefficients(modes, sent)
                    )
                )
            )
            for sent_log, got_log in zip(pipeline_payloads, pipeline_results)
            for sent, got in zip(sent_log, got_log)
        )
        assert worst < 1e-10, worst

        # Timed kernel for pytest-benchmark: one closed-loop client.
        with ServingClient.from_url(handle.url) as client:
            query = np.random.default_rng(5).standard_normal((NDOF, 1))
            benchmark(
                lambda: client.result(client.submit(BASIS, query), wait=30.0)
            )
    finally:
        handle.stop()

    (artifacts_dir / "BENCH_serving_frontend.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(artifacts_dir, "serving_frontend.txt", render(payload))

    # In-bench canaries (catastrophic only; the precise ratios are gated
    # by check_against_baseline vs the committed repo-root baseline).
    assert payload["healthz"]["status"] == 200
    pipe = payload["pipelined"]
    assert pipe["cache_hit_ratio"] > 0.999
    assert pipe["errors"] == 0
    for cell in payload["closed_loop"]:
        assert cell["errors"] == 0
        assert cell["p99_ms"] < 5000.0


def check_against_baseline(artifact_path, baseline_path):
    """Fail (exit 1) on serving-frontend regressions vs the baseline.

    Only machine-independent quantities are gated — see module docstring.
    """
    artifact = json.loads(pathlib.Path(artifact_path).read_text())
    baseline = json.loads(pathlib.Path(baseline_path).read_text())
    pipe, base = artifact["pipelined"], baseline["pipelined"]
    failures = []

    print(f"serving-frontend cache_hit_ratio: {pipe['cache_hit_ratio']:.3f}")
    if pipe["cache_hit_ratio"] < 0.999:
        failures.append(
            f"result-cache regression: replay hit ratio "
            f"{pipe['cache_hit_ratio']:.3f} < 1.0"
        )

    floor = base["batching_ratio"] * 0.5
    print(
        f"serving-frontend batching_ratio: measured "
        f"{pipe['batching_ratio']:.1f}, baseline requires >= {floor:.1f}"
    )
    if pipe["batching_ratio"] < floor:
        failures.append(
            f"coalescing regression: {pipe['batching_ratio']:.1f} "
            f"queries/flush fell below half of baseline "
            f"{base['batching_ratio']:.1f}"
        )

    # Both pipelined phases are HTTP-round-trip dominated, so the
    # speedup hovers near 1; this is a catastrophic-only canary (a
    # broken cached path that re-queues hits would stall the replay
    # behind the flush deadline and crater the ratio).  The functional
    # cache contract is the hit-ratio gate above.
    floor = base["cache_speedup"] * 0.3
    print(
        f"serving-frontend cache_speedup: measured "
        f"{pipe['cache_speedup']:.2f}, baseline requires >= {floor:.2f}"
    )
    if pipe["cache_speedup"] < floor:
        failures.append(
            f"cached-path regression: replay speedup "
            f"{pipe['cache_speedup']:.2f} below floor {floor:.2f} "
            f"(baseline {base['cache_speedup']:.2f})"
        )

    errors = pipe["errors"] + sum(c["errors"] for c in artifact["closed_loop"])
    if errors:
        failures.append(f"{errors} request(s) failed during the load run")

    if failures:
        raise SystemExit(
            "serving-frontend regression gate: " + "; ".join(failures)
        )


def main(argv):
    if argv and argv[0] == "--drive":
        url, out = argv[1], argv[2]
        payload, _, _ = drive(url)
        pathlib.Path(out).write_text(json.dumps(payload, indent=2) + "\n")
        print(render(payload))
        pipe = payload["pipelined"]
        if pipe["errors"] or pipe["cache_hit_ratio"] < 0.999:
            raise SystemExit("serve smoke: errors or cache misses on replay")
        if any(c["errors"] for c in payload["closed_loop"]):
            raise SystemExit("serve smoke: closed-loop request failures")
        print(f"serve smoke OK -> {out}")
        return
    check_against_baseline(*argv)


if __name__ == "__main__":
    import sys

    main(sys.argv[1:])
