"""Gather policy: lazy (deferred) vs eager per-step mode assembly.

``ParSVDParallel`` defers the ``gatherv_rows`` + ``bcast`` of the global
mode matrix until ``.modes`` is first read.  A pure streaming loop with
``gather="bcast"`` therefore moves *zero* mode-assembly bytes per batch —
the O(M·K) per-update collective the paper's Listing 2 avoids — while a
loop that reads ``.modes`` after every step reproduces the old eager cost.

This bench streams the same record both ways and reports per-step gatherv
collective counts, assembly bytes, and wall-clock throughput.  Expected
shape: the deferred run performs exactly one gatherv per rank (at the final
read) regardless of the number of batches, and its byte volume is ~1/n_steps
of the eager run's.
"""

import time

import numpy as np

from conftest import emit
from repro.api import BackendConfig, RunConfig, Session, SolverConfig
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table
from repro.utils.partition import block_partition

NX, NT, K, BATCH = 4096, 240, 8, 20
NRANKS = 2
N_STEPS = NT // BATCH

CONFIG = RunConfig(
    solver=SolverConfig(K=K, ff=0.95, gather="bcast"),
    backend=BackendConfig(name="threads", size=NRANKS),
)


def stream(data, read_every_step):
    """Stream all batches; read .modes per step (eager) or once (lazy)."""

    def job(session):
        comm = session.comm
        part = block_partition(NX, comm.size)
        block = data[part.slice_of(comm.rank), :]
        session.initialize(block[:, :BATCH])
        if read_every_step:
            _ = session.modes
        for start in range(BATCH, NT, BATCH):
            session.incorporate_data(block[:, start : start + BATCH])
            if read_every_step:
                _ = session.modes
        return session.modes.shape

    return job


def timed_run(data, read_every_step):
    job = stream(data, read_every_step)
    start = time.perf_counter()
    _, tracers = Session.run(CONFIG, job, trace=True)
    elapsed = time.perf_counter() - start
    gatherv_calls = sum(
        1 for r in tracers[0].records if r.op == "gatherv"
    )
    assembly_bytes = sum(
        tracer.bytes_for("gatherv") + tracer.bytes_for("bcast")
        for tracer in tracers
    )
    return elapsed, gatherv_calls, assembly_bytes


def test_gather_policy(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()

    benchmark(lambda: timed_run(data, read_every_step=False))

    lazy_t, lazy_calls, lazy_bytes = timed_run(data, read_every_step=False)
    eager_t, eager_calls, eager_bytes = timed_run(data, read_every_step=True)

    rows = [
        ["deferred (read once)", lazy_calls, lazy_bytes, NT / lazy_t],
        ["eager (read per step)", eager_calls, eager_bytes, NT / eager_t],
    ]
    save_series_csv(
        artifacts_dir / "gather_policy.csv",
        {
            "eager": np.array([0.0, 1.0]),
            "gatherv_calls_rank0": np.array(
                [lazy_calls, eager_calls], dtype=float
            ),
            "assembly_bytes": np.array([lazy_bytes, eager_bytes], dtype=float),
            "snapshots_per_s": np.array([NT / lazy_t, NT / eager_t]),
        },
    )
    emit(
        artifacts_dir,
        "gather_policy.txt",
        f"Gather policy: deferred vs eager mode assembly "
        f"(Burgers {NX}x{NT}, K={K}, {NRANKS} ranks, {N_STEPS} steps)\n"
        + format_table(
            ["policy", "gatherv_calls(rank0)", "assembly_bytes", "snap_per_s"],
            rows,
        ),
    )

    # The deferred loop performs exactly one mode assembly (the final
    # read); the eager loop performs one per step.
    assert lazy_calls == 1
    assert eager_calls == N_STEPS
    assert lazy_bytes < eager_bytes / (N_STEPS / 2)
