"""Ablation A1: the forget factor (paper section 3.1).

The paper: "Setting this value to 1.0 implies that the online-SVD converges
to the regular SVD utilizing all the snapshots in one-shot.  Setting values
of ff less than one reduces the impact of the snapshots observed in
previous batches" (they use ff = 0.95).

This bench sweeps ff and reports two quantities:

* agreement with the one-shot SVD of the *full* record (best at ff = 1);
* alignment with the SVD of only the *most recent* batches (improves as
  ff decreases) — the recency-tracking behaviour the knob exists for.
"""

import numpy as np

from conftest import emit
from repro import ParSVDSerial
from repro.core.metrics import mode_errors
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table

NX, NT, K, BATCH = 1024, 320, 6, 40
FFS = [0.5, 0.7, 0.9, 0.95, 0.99, 1.0]


def stream_with_ff(data, ff):
    svd = ParSVDSerial(K=K, ff=ff)
    svd.initialize(data[:, :BATCH])
    for start in range(BATCH, NT, BATCH):
        svd.incorporate_data(data[:, start : start + BATCH])
    return svd


def test_ablation_forget_factor(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()

    u_full, s_full, _ = np.linalg.svd(data, full_matrices=False)
    recent = data[:, -2 * BATCH :]
    u_recent, _, _ = np.linalg.svd(recent, full_matrices=False)

    benchmark(stream_with_ff, data, 0.95)  # time the paper's setting

    rows = []
    spectrum_errors, recency = [], []
    for ff in FFS:
        svd = stream_with_ff(data, ff)
        # compare the energetic leading values; the trailing retained value
        # always carries K-truncation error regardless of ff
        lead = 3
        spec_err = float(
            np.max(
                np.abs(svd.singular_values[:lead] - s_full[:lead])
                / s_full[:lead]
            )
        )
        mode1_err = float(mode_errors(u_full[:, :K], svd.modes)[0])
        # projection of the streamed leading mode onto the recent subspace
        recent_align = float(
            np.linalg.norm(u_recent[:, :K].T @ svd.modes[:, 0])
        )
        rows.append([ff, spec_err, mode1_err, recent_align])
        spectrum_errors.append(spec_err)
        recency.append(recent_align)

    save_series_csv(
        artifacts_dir / "ablation_forget_factor.csv",
        {
            "ff": np.array(FFS),
            "spectrum_rel_err_vs_full": np.array(spectrum_errors),
            "recent_subspace_alignment": np.array(recency),
        },
    )
    emit(
        artifacts_dir,
        "ablation_forget_factor.txt",
        "Ablation A1: forget factor sweep (Burgers, K=6, batch=40)\n"
        + format_table(
            ["ff", "max_rel_err_vs_full_svd", "mode1_err_vs_full", "recent_alignment"],
            rows,
        ),
    )

    # shape: ff=1.0 agrees best with the full-record SVD...
    assert spectrum_errors[-1] == min(spectrum_errors)
    assert spectrum_errors[-1] < 1e-2
    # ...and discounting the past improves recency tracking
    assert recency[0] >= recency[-1] - 1e-12
