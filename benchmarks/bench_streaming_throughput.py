"""Ablation A4: streaming ingestion throughput vs batch size.

The streaming SVD's per-snapshot cost follows ``M (K + B)^2 / B`` (each
update QR-factors an ``M x (K + B)`` block covering B new snapshots), which
is minimised near ``B ~ K``: tiny batches pay the K-column carry-over on
every snapshot, huge batches make the factored block needlessly wide.
Expected shape: throughput peaks near B = K and declines for B >> K; the
serial and parallel drivers show the same trend.
"""

import time

import numpy as np

from conftest import emit
from repro import ParSVDSerial
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table

NX, NT, K = 2048, 240, 8
BATCHES = [10, 20, 40, 80]
NRANKS = 2


def stream_serial(data, batch):
    svd = ParSVDSerial(K=K, ff=0.95)
    svd.initialize(data[:, :batch])
    for start in range(batch, NT, batch):
        svd.incorporate_data(data[:, start : start + batch])
    return svd


def stream_parallel(data, batch):
    cfg = RunConfig(
        solver=SolverConfig(K=K, ff=0.95, gather="none"),
        backend=BackendConfig(name="threads", size=NRANKS),
        stream=StreamConfig(batch=batch),
    )

    def job(session):
        return session.fit_stream(data).singular_values

    return Session.run(cfg, job)


def test_streaming_throughput(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()

    benchmark(stream_serial, data, 40)

    rows, serial_rates, parallel_rates = [], [], []
    for batch in BATCHES:
        start = time.perf_counter()
        stream_serial(data, batch)
        serial_rate = NT / (time.perf_counter() - start)

        start = time.perf_counter()
        stream_parallel(data, batch)
        parallel_rate = NT / (time.perf_counter() - start)

        rows.append([batch, serial_rate, parallel_rate])
        serial_rates.append(serial_rate)
        parallel_rates.append(parallel_rate)

    save_series_csv(
        artifacts_dir / "streaming_throughput.csv",
        {
            "batch": np.array(BATCHES, dtype=float),
            "serial_snapshots_per_s": np.array(serial_rates),
            "parallel_snapshots_per_s": np.array(parallel_rates),
        },
    )
    emit(
        artifacts_dir,
        "streaming_throughput.txt",
        f"Ablation A4: streaming throughput (Burgers {NX}x{NT}, K={K})\n"
        + format_table(
            ["batch", "serial_snap_per_s", f"parallel{NRANKS}_snap_per_s"],
            rows,
        ),
    )

    # shape: per-snapshot compute ~ M (K+B)^2 / B is minimised near B ~ K,
    # so for the serial driver the smallest batch (10 ~ K=8) must beat the
    # widest (80 = 10K).  The parallel driver adds a fixed communication
    # cost *per update*, which pushes its optimum toward larger batches —
    # so only positivity is asserted there and the table shows the shift.
    assert serial_rates[0] > serial_rates[-1]
    assert all(rate > 0 for rate in parallel_rates)
