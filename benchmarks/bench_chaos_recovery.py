"""Recovery overhead: fault-free streaming vs crash + restart + replay.

A seeded single-rank crash mid-stream forces ``Session.run`` (with a
``RestartPolicy``) to tear the SPMD world down, rebuild it and replay
from the last auto-checkpoint.  This bench times both lanes over the
same synthetic stream and reports the recovery tax: extra wall time,
restarts taken and batches replayed — while asserting the recovered
results match the fault-free ones exactly (the recovery contract).

Expected shape: recovery costs roughly one backoff plus the replayed
prefix; the recovered singular values and modes are bit-identical to
the uninterrupted run, so the overhead buys fault tolerance, not a
different answer.

A third lane runs the same crash under ``RestartPolicy(mode="live")``:
the health monitor declares the crashed rank dead and the world shrinks
in place — factors are gathered in memory, rows re-partitioned, the
stream resumed where it left off.  No restart, zero replayed batches,
same 1e-12 answer; the live tax is the drain + re-partition instead of
the replayed prefix.

Artifacts: ``chaos_recovery.json`` (timings + counters) and
``chaos_recovery.txt`` (table).
"""

import json
import time

import numpy as np

from conftest import emit
from repro.api import (
    BackendConfig,
    FaultConfig,
    FaultSpec,
    HealthConfig,
    ObservabilityConfig,
    RestartPolicy,
    RunConfig,
    Session,
    SolverConfig,
    StreamConfig,
)
from repro.obs import runtime as obs_rt
from repro.postprocessing.report import format_table

NDOF, NT, BATCH, K, RANKS = 512, 96, 8, 8, 4
CRASH_AT = 40  # mid-stream comm-op ordinal on the victim rank
# The live lane issues no per-batch checkpoint collectives, so each rank
# executes far fewer comm ops — its crash ordinal must sit in that
# smaller window to actually fire mid-stream.
LIVE_CRASH_AT = 9


def make_stream():
    rng = np.random.default_rng(11)
    x = np.linspace(0.0, 1.0, NDOF)
    t = np.linspace(0.0, 1.0, NT)
    basis = np.column_stack([np.sin((i + 1) * np.pi * x) for i in range(6)])
    weights = np.column_stack(
        [np.cos((i + 1) * 2.0 * np.pi * t) / (i + 1.0) for i in range(6)]
    )
    return basis @ weights.T + 0.01 * rng.standard_normal((NDOF, NT))


DATA = make_stream()


def job(session):
    result = session.fit_stream(DATA).result()
    return result.singular_values, result.modes


def base_config():
    return RunConfig(
        solver=SolverConfig(K=K, ff=0.95, qr_variant="gather", overlap=True),
        backend=BackendConfig(name="threads", size=RANKS, timeout=30.0),
        stream=StreamConfig(batch=BATCH),
        obs=ObservabilityConfig(metrics=True),
    )


def run_fault_free():
    start = time.perf_counter()
    results = Session.run(base_config(), job)
    return time.perf_counter() - start, results


def run_with_crash():
    cfg = base_config().replace(
        faults=FaultConfig(
            enabled=True,
            seed=1234,
            schedule=(FaultSpec(kind="crash", rank=1, op="*", at=CRASH_AT),),
        )
    )
    policy = RestartPolicy(max_restarts=2, backoff_s=0.01, checkpoint_every=1)
    obs_rt.reset()
    start = time.perf_counter()
    results = Session.run(cfg, job, restart_policy=policy)
    elapsed = time.perf_counter() - start
    counters = obs_rt.default_registry().snapshot()["counters"]

    def count(name):
        meter = counters.get(name)
        return int(meter["value"]) if meter else 0

    return elapsed, results, {
        "restarts": count("repro.recovery.restarts"),
        "replayed_batches": count("repro.recovery.replayed_batches"),
        "injected_crashes": count("repro.faults.injected.crash"),
    }


def run_with_live_crash():
    cfg = base_config().replace(
        faults=FaultConfig(
            enabled=True,
            seed=1234,
            schedule=(FaultSpec(kind="crash", rank=1, op="*", at=LIVE_CRASH_AT),),
        ),
        health=HealthConfig(
            enabled=True, heartbeat_interval=0.01, suspect_after=0.1
        ),
    )
    policy = RestartPolicy(
        mode="live", max_restarts=2, checkpoint_every=1, min_size=2
    )
    obs_rt.reset()
    start = time.perf_counter()
    results = Session.run(cfg, job, restart_policy=policy)
    elapsed = time.perf_counter() - start
    counters = obs_rt.default_registry().snapshot()["counters"]

    def count(name):
        meter = counters.get(name)
        return int(meter["value"]) if meter else 0

    return elapsed, results, {
        "live_rescales": count("repro.recovery.live_rescales"),
        "live_replayed_batches": count("repro.recovery.replayed_batches"),
        "live_injected_crashes": count("repro.faults.injected.crash"),
    }


def test_chaos_recovery_overhead(benchmark, artifacts_dir):
    clean_s, clean = run_fault_free()
    chaos_s, recovered, counters = run_with_crash()
    live_s, live, live_counters = run_with_live_crash()

    # The recovery contract: same answer, despite the crash.
    assert counters["injected_crashes"] >= 1
    assert counters["restarts"] >= 1
    for (rsv, rmodes), (csv, cmodes) in zip(recovered, clean):
        assert float(np.max(np.abs(rsv - csv))) < 1e-12
        assert float(np.max(np.abs(np.abs(rmodes) - np.abs(cmodes)))) < 1e-12

    # The live-elasticity contract: same answer again, but via in-place
    # shrink — no restart, no stream replay.
    assert live_counters["live_injected_crashes"] >= 1
    assert live_counters["live_rescales"] >= 1
    assert live_counters["live_replayed_batches"] == 0
    for (rsv, rmodes), (csv, cmodes) in zip(live, clean):
        assert float(np.max(np.abs(rsv - csv))) < 1e-12
        assert float(np.max(np.abs(np.abs(rmodes) - np.abs(cmodes)))) < 1e-12

    benchmark(lambda: run_with_crash())

    overhead = chaos_s / max(clean_s, 1e-9)
    live_overhead = live_s / max(clean_s, 1e-9)
    payload = {
        "bench": "chaos_recovery",
        "ndof": NDOF,
        "nt": NT,
        "batch": BATCH,
        "modes": K,
        "ranks": RANKS,
        "backend": "threads",
        "crash_at": CRASH_AT,
        "live_crash_at": LIVE_CRASH_AT,
        "fault_free_s": clean_s,
        "recovered_s": chaos_s,
        "live_rescaled_s": live_s,
        "overhead_x": overhead,
        "live_overhead_x": live_overhead,
        **counters,
        **live_counters,
    }
    (artifacts_dir / "chaos_recovery.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    emit(
        artifacts_dir,
        "chaos_recovery.txt",
        f"Crash + restart recovery tax ({NDOF}x{NT} stream, K={K}, "
        f"{RANKS} ranks, crash at op #{CRASH_AT}, live at #{LIVE_CRASH_AT})\n"
        + format_table(
            ["lane", "wall_s", "restarts", "rescales", "replayed_batches"],
            [
                ["fault-free", f"{clean_s:.3f}", 0, 0, 0],
                [
                    "crash+recover",
                    f"{chaos_s:.3f}",
                    counters["restarts"],
                    0,
                    counters["replayed_batches"],
                ],
                [
                    "crash+live-shrink",
                    f"{live_s:.3f}",
                    0,
                    live_counters["live_rescales"],
                    live_counters["live_replayed_batches"],
                ],
            ],
        )
        + f"\noverhead: restart {overhead:.2f}x, live {live_overhead:.2f}x",
    )
