"""Ablation A7: sketch families for the randomized range finder.

The paper samples its test matrix from a Gaussian; the randomized-NLA
literature offers cheaper families with the same embedding guarantees.
This bench compares Gaussian, Rademacher (±1) and sparse-sign sketches on
accuracy (error over the optimal rank-K error) and sketch-generation cost.
Expected shape: all three families land at comparable error; the structured
families generate faster.
"""

import time

import numpy as np

from conftest import emit
from repro.core.randomized import make_sketch, randomized_svd
from repro.data.synthetic import matrix_with_spectrum, spectrum_polynomial
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table

M, N, K = 3000, 300, 10
FAMILIES = ("gaussian", "rademacher", "sparse")


def test_ablation_sketch_families(benchmark, artifacts_dir):
    a, _, s_true, _ = matrix_with_spectrum(
        M, N, spectrum_polynomial(N, 1.0), rng=0
    )
    optimal = np.linalg.norm(s_true[K:])

    benchmark(randomized_svd, a, K, 10, 1, 0, "gaussian")

    rows = []
    errors = {}
    for family in FAMILIES:
        # accuracy: median over a few seeds (sketches are random)
        errs = []
        for seed in range(5):
            u, s, vt = randomized_svd(
                a, K, oversampling=10, power_iters=1, rng=seed, sketch=family
            )
            errs.append(np.linalg.norm(a - (u * s) @ vt) / optimal)
        err = float(np.median(errs))

        # generation cost of the raw sketch
        start = time.perf_counter()
        for seed in range(10):
            make_sketch(family, N, K + 10, rng=seed)
        gen_ms = (time.perf_counter() - start) * 100.0  # per-sketch ms

        rows.append([family, err, gen_ms])
        errors[family] = err

    save_series_csv(
        artifacts_dir / "ablation_sketches.csv",
        {
            "family_index": np.arange(len(FAMILIES), dtype=float),
            "err_over_optimal": np.array([r[1] for r in rows]),
            "gen_ms": np.array([r[2] for r in rows]),
        },
    )
    emit(
        artifacts_dir,
        "ablation_sketches.txt",
        f"Ablation A7: sketch families ({M}x{N}, K={K}, oversampling=10, q=1)\n"
        + format_table(["family", "median err/optimal", "sketch gen ms"], rows),
    )

    # shape: every family is a valid subspace embedding — all land within a
    # few percent of the optimal rank-K error
    for family in FAMILIES:
        assert errors[family] < 1.2
