"""Ablation A8: flat vs two-level (hierarchical) APMOS.

The weak-scaling reproduction (F1c) shows the flat gather + widening root
SVD bending the curve at high rank counts.  The two-level variant
(`apmos_svd_two_level`) reduces within groups first, shrinking both terms.
This bench (a) verifies the hierarchy is numerically faithful on real
runs, with measured root traffic, and (b) extends the calibrated scaling
model to predict the efficiency recovered at the paper's largest scale.
"""

import numpy as np

from conftest import emit
from repro.core.apmos import apmos_svd, apmos_svd_two_level
from repro.data.burgers import BurgersProblem
from repro.perf.machine import THETA_KNL
from repro.perf.scaling import WeakScalingStudy
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table
from repro.smpi import run_spmd
from repro.utils.partition import block_partition

NX, NT, R1, R2 = 1024, 200, 40, 5
NRANKS, GROUP = 8, 4


def run_two_level(data):
    def job(comm):
        part = block_partition(NX, comm.size)
        block = data[part.slice_of(comm.rank), :]
        return apmos_svd_two_level(comm, block, r1=R1, r2=R2, group_size=GROUP)

    return run_spmd(NRANKS, job, trace=True)


def test_hierarchical_apmos(benchmark, artifacts_dir):
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()

    # numerical fidelity + measured traffic on real runs
    def flat_job(comm):
        part = block_partition(NX, comm.size)
        block = data[part.slice_of(comm.rank), :]
        return apmos_svd(comm, block, r1=R1, r2=R2)

    flat_results, flat_tracers = run_spmd(NRANKS, flat_job, trace=True)
    two_results, two_tracers = benchmark(run_two_level, data)

    s_flat = flat_results[0][1]
    s_two = two_results[0][1]
    fidelity = float(np.max(np.abs(s_flat - s_two) / s_flat))
    flat_root_bytes = flat_tracers[0].bytes_for("gather")
    two_root_bytes = two_tracers[0].bytes_for("gather")

    # model extension at the paper's scale
    study = WeakScalingStudy(
        n_snapshots=800, k=10, r1=50, machine=THETA_KNL, calibrate=True, seed=0
    )
    counts = study.paper_rank_counts(max_nodes=256)
    flat_curve = study.run(counts)
    hier_curve = study.run(counts, group_size=64)

    save_series_csv(
        artifacts_dir / "hierarchical_apmos.csv",
        {
            "ranks": flat_curve.ranks.astype(float),
            "flat_time_s": flat_curve.times,
            "two_level_time_s": hier_curve.times,
            "flat_efficiency": flat_curve.efficiency,
            "two_level_efficiency": hier_curve.efficiency,
        },
    )
    rows = [
        [p, tf, ef, th, eh]
        for p, tf, ef, th, eh in zip(
            counts,
            flat_curve.times,
            flat_curve.efficiency,
            hier_curve.times,
            hier_curve.efficiency,
        )
    ]
    emit(
        artifacts_dir,
        "hierarchical_apmos.txt",
        "Ablation A8: flat vs two-level APMOS\n"
        f"  live run ({NRANKS} ranks, groups of {GROUP}): "
        f"max rel sigma diff = {fidelity:.2e}; "
        f"root gather bytes {flat_root_bytes} -> {two_root_bytes}\n"
        "  modelled weak scaling (Theta-KNL, groups of 64):\n"
        + format_table(
            ["ranks", "flat_s", "flat_eff", "2level_s", "2level_eff"], rows
        ),
    )

    # shapes: faithful numerics, reduced root traffic, recovered efficiency
    assert fidelity < 1e-8
    assert two_root_bytes < flat_root_bytes
    assert hier_curve.efficiency[-1] > 2 * flat_curve.efficiency[-1]
