"""Ablation A6: strong scaling (complements the paper's Figure 1c).

The paper reports weak scaling; the natural follow-up question for a
downstream user is strong scaling: with a *fixed* dataset, how many ranks
are worth using?  The model predicts near-linear speedup while the local
``O(M/p · N²)`` work dominates and a turnover once the p-growing terms
(gather volume, rank-0 SVD of the widening ``W``) take over.
"""

import numpy as np

from conftest import emit
from repro.perf.machine import THETA_KNL
from repro.perf.scaling import StrongScalingStudy
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table

N_DOF = 262144  # fixed global problem (= 256 weak-scaling ranks' worth)
N_SNAPSHOTS = 800


def build_study():
    return StrongScalingStudy(
        n_dof=N_DOF,
        n_snapshots=N_SNAPSHOTS,
        k=10,
        r1=50,
        machine=THETA_KNL,
        calibrate=True,
        seed=0,
    )


def test_strong_scaling(benchmark, artifacts_dir):
    study = benchmark(build_study)

    counts = [1 << i for i in range(15)]  # 1 .. 16384
    result = study.run(counts)
    speedups = study.speedups(result)
    turnover = study.turnover_ranks()

    save_series_csv(
        artifacts_dir / "strong_scaling.csv",
        {
            "ranks": result.ranks.astype(float),
            "time_s": result.times,
            "speedup": speedups,
        },
    )
    rows = [
        [p.ranks, p.total_s, s, p.compute_s, p.gather_s + p.bcast_s + p.root_svd_s]
        for p, s in zip(result.points, speedups)
    ]
    emit(
        artifacts_dir,
        "strong_scaling.txt",
        f"Ablation A6: strong scaling ({N_DOF} dofs, {N_SNAPSHOTS} snapshots)\n"
        f"turnover (adding ranks stops helping) at ~{turnover} ranks\n"
        + format_table(
            ["ranks", "time_s", "speedup", "compute_s", "overhead_s"], rows
        ),
    )

    # shape: near-linear at small p ...
    assert speedups[1] > 1.8 and speedups[3] > 6.0
    # ... a wall exists ...
    assert 8 <= turnover <= 16384
    # ... and the curve comes back down past it
    assert result.times[-1] > min(result.times)
