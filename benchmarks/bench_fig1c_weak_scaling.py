"""Figure 1(c): weak scaling of the parallel+randomized SVD up to 256 nodes.

Paper setup: 1024 grid points per rank on Theta (Intel KNL, 64 ranks/node),
one APMOS factorization per measurement ("this experiment solely assessed
the parallelized and randomized SVD without the utilization of the
streaming operation"), rank counts up to 256 nodes = 16384 ranks.  The
figure shows time-vs-ranks following the flat ideal weak-scaling trend.

Reproduction: the Theta machine is unavailable, so per DESIGN.md the curve
combines (a) the *measured* per-rank local kernel time on this machine,
(b) the rank-0 SVD term from flop counts at a *measured* effective flop
rate, and (c) the α-β communication model fed by the exact APMOS traffic
formulas, which are validated here against byte counts recorded by the
CommTracer at runnable rank counts.  Expected shape: near-ideal (flat)
scaling with a slow efficiency decay driven by the growth of the gathered
``W`` matrix.
"""

import numpy as np

from conftest import emit
from repro.perf.machine import THETA_KNL
from repro.perf.scaling import WeakScalingStudy
from repro.postprocessing.plots import save_series_csv
from repro.postprocessing.report import format_table, scaling_report

POINTS_PER_RANK = 1024  # paper value
N_SNAPSHOTS = 800       # paper's Burgers snapshot count
K, R1 = 10, 50


def build_study():
    return WeakScalingStudy(
        points_per_rank=POINTS_PER_RANK,
        n_snapshots=N_SNAPSHOTS,
        k=K,
        r1=R1,
        machine=THETA_KNL,
        calibrate=True,
        seed=0,
    )


def test_fig1c_weak_scaling(benchmark, artifacts_dir):
    study = benchmark(build_study)  # times the calibration measurements

    counts = study.paper_rank_counts(max_nodes=256)
    result = study.run(counts)

    # exact-traffic validation at runnable rank counts
    validations = [study.validate_traffic(p) for p in (1, 2, 4)]
    for v in validations:
        assert v["measured_gather_root"] == v["model_gather_root"]
        assert v["measured_bcast"] == v["model_bcast"]

    nodes = [p.nodes for p in result.points]
    save_series_csv(
        artifacts_dir / "fig1c_weak_scaling.csv",
        {
            "ranks": result.ranks.astype(float),
            "nodes": np.array(nodes),
            "time_s": result.times,
            "ideal_s": result.ideal,
            "efficiency": result.efficiency,
        },
    )

    breakdown_rows = [
        [p.ranks, f"{p.nodes:g}", p.compute_s, p.root_svd_s, p.gather_s, p.bcast_s, p.total_s]
        for p in result.points
    ]
    lines = [
        "Figure 1(c) reproduction: weak scaling, 1024 points/rank, APMOS+randomized",
        f"  machine model: {study.machine.name} "
        f"(alpha={study.machine.latency_s:.1e}s, "
        f"beta={study.machine.bandwidth_bytes_per_s:.1e}B/s, "
        f"{study.machine.ranks_per_node} ranks/node)",
        "  traffic formulas validated exactly against CommTracer at p=1,2,4",
        "",
        scaling_report(list(result.ranks), list(result.times)),
        "",
        "cost breakdown (seconds):",
        format_table(
            ["ranks", "nodes", "compute", "root_svd", "gather", "bcast", "total"],
            breakdown_rows,
        ),
    ]
    emit(artifacts_dir, "fig1c_weak_scaling.txt", "\n".join(lines))

    # paper shape: "scaling is seen to follow the ideal trend appropriately"
    # — near-ideal through one full node, graceful decay beyond
    one_node = np.searchsorted(result.ranks, 64)
    assert result.efficiency[one_node] > 0.7
    # efficiency decays monotonically (communication grows with p)
    assert np.all(np.diff(result.efficiency) <= 1e-12)
    # the curve must remain within an order of magnitude of ideal at 256 nodes
    assert result.times[-1] < 10 * result.times[0]
