#!/usr/bin/env python
"""Serving mode-base queries from a sharded basis.

The compute engine produces bases; downstream consumers only ever *query*
them — project new snapshots, lift coefficients back, score how well a
field is represented.  This example walks the whole serving path:

1. stream a Burgers record through the parallel SVD and **publish** the
   basis into a versioned :class:`ModeBaseStore` (one single-file gathered
   checkpoint at rank 0);
2. stand up a **QueryEngine** over several ranks: the basis is
   row-sharded, pending queries are coalesced into one distributed GEMM
   per flush, and hot bases sit in an LRU cache;
3. verify every answer against the serial ``analysis.reconstruction``
   reference.

Run:  python examples/serving_queries.py [--backend threads|self|mpi4py]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.reconstruction import (
    project_coefficients,
    reconstruction_error_curve,
)
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.data.burgers import BurgersProblem
from repro.serving import ModeBaseStore
from repro.smpi import BACKENDS, DEFAULT_BACKEND

NX, NT, K, BATCH, NRANKS = 1024, 240, 6, 40, 3
N_QUERIES = 12


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--backend", choices=BACKENDS, default=DEFAULT_BACKEND)
    args = parser.parse_args()
    nranks = 1 if args.backend == "self" else NRANKS
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    cfg = RunConfig(
        solver=SolverConfig(K=K, ff=1.0, r1=50),
        backend=BackendConfig(name=args.backend, size=nranks),
        stream=StreamConfig(batch=BATCH),
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ModeBaseStore(Path(tmp) / "bases")

        # ---- produce: stream the record, publish the basis ------------
        def build(session: Session):
            session.fit_stream(data)
            return session.export_to_store(store, "burgers")

        version = Session.run(cfg, build)[0]
        base = store.get("burgers")
        print(
            f"published 'burgers' v{version}: "
            f"{base.n_dof} dof x {base.n_modes} modes "
            f"(store catalogue: {store.describe()})"
        )

        # ---- serve: micro-batched queries over the sharded basis ------
        rng = np.random.default_rng(7)
        snapshots = [
            data[:, rng.integers(0, NT, size=4)] for _ in range(N_QUERIES)
        ]

        def serve(session: Session):
            engine = session.query_engine(store)
            proj = [engine.submit_project("burgers", q) for q in snapshots]
            errs = [engine.submit_error("burgers", q) for q in snapshots]
            served = engine.flush()  # ONE GEMM per (basis, kind) group
            flush_gemms = engine.stats()["gemms"]
            roundtrip = engine.reconstruct("burgers", proj[0].result())
            return (
                [t.result() for t in proj],
                [t.result() for t in errs],
                roundtrip,
                served,
                flush_gemms,
            )

        coeffs, errors, roundtrip, served, flush_gemms = Session.run(
            cfg, serve
        )[0]
        print(
            f"flush answered {served} queries with {flush_gemms} "
            f"distributed GEMMs ({nranks} shards, backend {args.backend!r})"
        )

        # ---- verify against the serial reference ----------------------
        worst = 0.0
        for q, c, e in zip(snapshots, coeffs, errors):
            worst = max(
                worst,
                float(np.max(np.abs(c - project_coefficients(base.modes, q)))),
                abs(e - reconstruction_error_curve(q, base.modes)[-1]),
            )
        recon_ref = base.modes @ coeffs[0]
        worst = max(worst, float(np.max(np.abs(roundtrip - recon_ref))))
        print(f"worst deviation vs serial reference: {worst:.3e}")
        assert worst < 1e-10
        mean_err = float(np.mean(errors))
        print(
            f"queries served from sharded basis: {2 * N_QUERIES + 1} "
            f"(mean reconstruction error {mean_err:.3e})"
        )


if __name__ == "__main__":
    main()
