#!/usr/bin/env python
"""Serving a mode base over HTTP with SLO-driven flushing.

The in-process :class:`QueryEngine` (see ``serving_queries.py``)
coalesces queries into one distributed GEMM per flush — but its callers
must share the producing process.  :mod:`repro.net` lifts the same
engine behind an asyncio HTTP frontend so any client that can speak
JSON-over-HTTP can query a published basis:

1. stream a Burgers record and **publish** the basis into a
   :class:`ModeBaseStore`;
2. start a :class:`NetServer` on an ephemeral port: the deadline
   scheduler flushes pending queries within ``flush_deadline_ms`` even
   when the micro-batch watermark is never reached, and a keyed result
   cache answers repeated payloads at submit time;
3. drive it with :class:`ServingClient` — submit returns a job ticket,
   ``GET /v1/jobs/{id}?wait=`` long-polls the result — behind per-tenant
   API-key auth, and verify every answer against the in-process engine.

Run:  python examples/http_serving.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.api import (
    BackendConfig,
    RunConfig,
    ServingConfig,
    Session,
    SolverConfig,
    StreamConfig,
    TenantSpec,
)
from repro.data.burgers import BurgersProblem
from repro.net import ServingClient, start_in_thread
from repro.serving import ModeBaseStore

NX, NT, K, BATCH = 512, 120, 6, 40
N_QUERIES = 8


def main() -> None:
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    run_cfg = RunConfig(
        solver=SolverConfig(K=K, ff=1.0),
        backend=BackendConfig(name="self"),
        stream=StreamConfig(batch=BATCH),
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ModeBaseStore(Path(tmp) / "bases")

        # ---- produce: stream the record, publish the basis ------------
        with Session(run_cfg) as session:
            version = session.fit_stream(data).export_to_store(
                store, "burgers"
            )
        print(f"published 'burgers' v{version} into the store")

        # ---- serve: HTTP frontend with a 25 ms flush SLO --------------
        cfg = run_cfg.replace(
            serving=ServingConfig(
                port=0,  # ephemeral
                flush_deadline_ms=25.0,
                max_batch=32,
                result_cache_entries=64,
                tenants=(TenantSpec(name="demo", key="demo-key"),),
            )
        )
        rng = np.random.default_rng(7)
        snapshots = [
            data[:, rng.integers(0, NT, size=3)] for _ in range(N_QUERIES)
        ]

        with start_in_thread(store, cfg) as handle:
            print(f"serving on {handle.url} (tenant auth enabled)")
            with ServingClient.from_url(handle.url) as anon:
                status, _ = anon.request_raw(
                    "POST",
                    "/v1/query",
                    {"basis": "burgers", "payload": [[0.0]]},
                )
                print(f"unkeyed submit rejected with HTTP {status}")
                assert status == 401

            with ServingClient.from_url(
                handle.url, api_key="demo-key"
            ) as client:
                jobs = [
                    client.submit("burgers", q, kind="project")
                    for q in snapshots
                ]
                answers = [client.result(job, wait=10.0) for job in jobs]

                # Replaying an identical payload hits the result cache:
                # the submit itself comes back `done`, no flush needed.
                replay = client.submit("burgers", snapshots[0])
                print(
                    f"replayed payload answered at submit: "
                    f"status={replay['status']} cached={replay['cached']}"
                )
                assert replay["cached"] is True

                stats = client.metrics()["engine"]
                health_status, health = client.healthz()

        # ---- verify against the in-process engine ---------------------
        with Session(run_cfg) as session:
            engine = session.query_engine(store)
            expected = [engine.project("burgers", q) for q in snapshots]
        worst = max(
            float(np.max(np.abs(np.asarray(got) - want)))
            for got, want in zip(answers, expected)
        )
        print(
            f"served {len(answers)} queries in {stats['flushes']} "
            f"flush(es), {stats['deadline_flushes']} by deadline; "
            f"healthz {health_status} ({health['status']})"
        )
        print(f"HTTP answers match in-process engine: worst |Δ| {worst:.3e}")
        assert worst < 1e-10
        assert health_status == 200


if __name__ == "__main__":
    main()
