#!/usr/bin/env python
"""Quickstart: streaming truncated SVD of a snapshot matrix.

Builds a random low-rank snapshot matrix, streams it through
:class:`repro.ParSVDSerial` batch by batch (the paper's Listing-1 usage
pattern), compares the result to the one-shot SVD, and then re-runs the
same stream through the *parallel* driver — constructed the typed way,
through a :class:`repro.api.Session` on the zero-overhead ``"self"``
communicator backend — same numbers, same single-process execution.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ParSVDSerial
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.postprocessing.plots import plot_singular_values
from repro.utils.linalg import align_signs


def main() -> None:
    rng = np.random.default_rng(0)

    # A tall-skinny snapshot matrix with a decaying spectrum: 2000 grid
    # points, 200 snapshots, ~15 energetic directions.
    m, n, rank = 2000, 200, 15
    left = rng.standard_normal((m, rank))
    weights = 0.7 ** np.arange(rank)
    right = rng.standard_normal((rank, n))
    data = (left * weights) @ right

    # Stream it: initialize with the first batch, then ingest the rest.
    # ff=1.0 -> converges to the one-shot SVD; K=8 modes retained.
    batch = 25
    svd = ParSVDSerial(K=8, ff=1.0)
    svd.initialize(data[:, :batch])
    for start in range(batch, n, batch):
        svd.incorporate_data(data[:, start : start + batch])
    print(f"ingested {svd.n_seen} snapshots in {svd.iteration} batches")

    # Compare against the one-shot SVD.
    u, s, _ = np.linalg.svd(data, full_matrices=False)
    rel = np.abs(svd.singular_values - s[:8]) / s[:8]
    aligned = align_signs(u[:, :8], svd.modes)
    mode_err = np.linalg.norm(aligned - u[:, :8], axis=0)
    print("\n  j   sigma(stream)   sigma(batch)    rel.err     mode err")
    for j in range(8):
        print(
            f"  {j + 1}   {svd.singular_values[j]:12.6e}  "
            f"{s[j]:12.6e}  {rel[j]:9.2e}  {mode_err[j]:9.2e}"
        )

    print()
    print(plot_singular_values(svd.singular_values, title="retained spectrum"))

    # The parallel driver runs unmodified on the single-rank "self"
    # backend — every collective short-circuits, so this is as fast as the
    # serial class and numerically identical to it.  One RunConfig
    # describes the whole run; the Session owns the communicator, builds
    # the driver and slices the matrix into batches.
    cfg = RunConfig(
        solver=SolverConfig(K=8, ff=1.0),
        backend=BackendConfig(name="self"),
        stream=StreamConfig(batch=batch),
    )
    with Session(cfg) as session:
        par = session.fit_stream(data).result()
    val_drift = np.max(
        np.abs(par.singular_values - svd.singular_values) / svd.singular_values
    )
    mode_drift = np.max(np.abs(align_signs(svd.modes, par.modes) - svd.modes))
    print(
        f"\nParSVDParallel on backend 'self': max sigma drift {val_drift:.2e},"
        f" max mode drift {mode_drift:.2e} vs ParSVDSerial"
    )
    assert val_drift < 1e-12 and mode_drift < 1e-10

    # Results persist to a single .npz archive.
    path = svd.save_results("/tmp/quickstart_result")
    print(f"\nresults saved to {path}")


if __name__ == "__main__":
    main()
