#!/usr/bin/env python
"""Pipelined streaming: out-of-core ingestion + overlapped collectives.

Three stages of one streaming step run concurrently here:

1. a ``PrefetchStream`` background thread reads the *next* batch from an
   on-disk snapshot container (out-of-core ingestion);
2. each rank's ``incorporate_data`` posts its TSQR communication and
   returns with the step *in flight* (``ParSVDParallel(overlap=True)``);
3. the previous step's fused reply completes lazily at the next update.

The numbers are identical to the plain blocking loop — asserted below to
1e-12 — only the schedule changes.

Run:  python examples/pipelined_streaming.py
"""

import tempfile
import time

import numpy as np

from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.data import write_snapshot_dataset

M, NT, K, BATCH, RANKS = 2048, 240, 8, 24, 4


def make_dataset(path):
    rng = np.random.default_rng(42)
    left = rng.standard_normal((M, 6))
    right = rng.standard_normal((6, NT))
    data = left @ right + 1e-3 * rng.standard_normal((M, NT))
    write_snapshot_dataset(path, data)
    return path


def stream_svd(dataset_path, *, overlap, prefetch):
    """Fit the distributed streaming SVD from the on-disk container.

    The whole pipeline — out-of-core source, per-rank row restriction,
    background prefetch, overlapped collectives — is declared in the
    RunConfig; the Session wires it."""
    cfg = RunConfig(
        solver=SolverConfig(K=K, ff=1.0, overlap=overlap),
        backend=BackendConfig(name="threads", size=RANKS),
        stream=StreamConfig(
            source=str(dataset_path), batch=BATCH, prefetch=2 if prefetch else 0
        ),
    )

    def job(session: Session):
        res = session.fit_stream().result()
        return np.array(res.modes), np.array(res.singular_values)

    start = time.perf_counter()
    modes, values = Session.run(cfg, job)[0]
    return modes, values, time.perf_counter() - start


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-pipeline-") as tmp:
        path = make_dataset(f"{tmp}/snapshots.npz")
        print(
            f"streaming {NT} snapshots of {M} dofs from disk "
            f"({RANKS} ranks, K={K}, batches of {BATCH})"
        )
        m_ref, v_ref, t_ref = stream_svd(path, overlap=False, prefetch=False)
        m_pipe, v_pipe, t_pipe = stream_svd(path, overlap=True, prefetch=True)

        dm = float(np.max(np.abs(m_ref - m_pipe)))
        dv = float(np.max(np.abs(v_ref - v_pipe)))
        assert dm <= 1e-12 and dv <= 1e-12, (dm, dv)
        print(f"blocking loop          : {t_ref:6.2f} s")
        print(f"prefetch + overlap loop: {t_pipe:6.2f} s")
        print(
            f"pipelined result matches blocking to "
            f"max|dU|={dm:.1e}, max|dS|={dv:.1e}"
        )
        print(f"leading singular values: {np.round(v_pipe[:4], 3)}")


if __name__ == "__main__":
    main()
