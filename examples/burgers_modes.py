#!/usr/bin/env python
"""Coherent structures of the viscous Burgers equation (paper section 4.3).

Reproduces the paper's first experiment end to end at reduced resolution:

1. generate analytic Burgers snapshots (Re=1000, the paper's Eq. 13);
2. compute the streaming SVD serially (the reference);
3. compute it in parallel on 4 SPMD ranks with randomization — the paper's
   "randomized+parallel deployment";
4. compare the two leading modes (what Figures 1a/1b plot).

Run:  python examples/burgers_modes.py
"""

import numpy as np

from repro import ParSVDSerial, compare_modes
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.data.burgers import BurgersProblem
from repro.postprocessing.plots import plot_mode_comparison

NX, NT, K, BATCH, NRANKS = 2048, 400, 10, 100, 4


def serial_reference(data: np.ndarray) -> ParSVDSerial:
    svd = ParSVDSerial(K=K, ff=0.95)
    svd.initialize(data[:, :BATCH])
    for start in range(BATCH, NT, BATCH):
        svd.incorporate_data(data[:, start : start + BATCH])
    return svd


def parallel_candidate(data: np.ndarray):
    """The paper's deployment: 4 ranks, randomized inner SVDs — one typed
    RunConfig, dispatched SPMD through the Session facade (which also
    row-partitions the global snapshot matrix per rank)."""
    cfg = RunConfig(
        solver=SolverConfig(
            K=K, ff=0.95, r1=50,
            low_rank=True, oversampling=10, power_iters=2, seed=0,
        ),
        backend=BackendConfig(name="threads", size=NRANKS),
        stream=StreamConfig(batch=BATCH),
    )

    def job(session: Session):
        res = session.fit_stream(data).result()
        return res.modes, res.singular_values

    return Session.run(cfg, job)[0]


def main() -> None:
    problem = BurgersProblem(nx=NX, nt=NT)
    print(
        f"Burgers setup: Re={problem.reynolds:g}, {NX} grid points, "
        f"{NT} snapshots, K={K}, batch={BATCH}"
    )
    data = problem.snapshot_matrix()

    serial = serial_reference(data)
    parallel_modes, parallel_values = parallel_candidate(data)

    comparison = compare_modes(
        serial.modes,
        serial.singular_values,
        parallel_modes,
        parallel_values,
        n_modes=2,
    )
    print(
        f"\nserial vs parallel(4 ranks, randomized), leading 2 modes:\n"
        f"  mode relative errors : {comparison.mode_rel_errors}\n"
        f"  spectrum rel errors  : {comparison.spectrum_rel_errors}\n"
        f"  max subspace angle   : {comparison.max_subspace_angle_deg:.2e} deg"
    )

    for mode in (0, 1):
        print()
        print(
            plot_mode_comparison(
                serial.modes, parallel_modes, mode, width=72, height=14
            )
        )


if __name__ == "__main__":
    main()
