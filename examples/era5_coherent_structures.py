#!/usr/bin/env python
"""Coherent structures in a global pressure record (paper Figure 2 workflow).

Full science pipeline:

1. synthesise an ERA5-like global surface-pressure record (6-hourly cadence,
   planted seasonal + travelling-wave structures) and write it to the
   snapshot container (the repo's parallel-IO substrate);
2. run the distributed streaming SVD on 4 ranks, each reading only its own
   rows from disk;
3. extract and report the coherent structures, checking the recovered modes
   against the planted ground truth.

Run:  python examples/era5_coherent_structures.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.analysis.coherent import extract_coherent_structures
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.data.era5_like import Era5LikeField
from repro.data.io import write_snapshot_dataset
from repro.postprocessing.plots import ascii_field

NLAT, NLON, NT, BATCH, NRANKS, K = 24, 48, 480, 80, 4, 6


def main() -> None:
    field = Era5LikeField(
        nlat=NLAT, nlon=NLON, nt=NT, dt_hours=6.0, noise_amp=0.4, seed=11
    )
    print(
        f"synthetic pressure record: {NLAT}x{NLON} grid, {NT} snapshots "
        f"@ {field.dt_hours:g}h (planted: seasonal see-saw + wavenumber-"
        f"{field.wave_numbers[0]} travelling wave)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pressure.rsnap"
        write_snapshot_dataset(
            path,
            field.anomaly_snapshots(),
            meta={"field": "surface_pressure_anomaly", "cadence_hours": 6.0},
        )
        print(f"wrote container: {path.stat().st_size / 1e6:.1f} MB")

        # The RunConfig names the on-disk container as the stream source,
        # so fit_stream() needs no arguments: each rank opens the dataset,
        # takes its canonical row block, and streams it in BATCH-column
        # batches.
        cfg = RunConfig(
            solver=SolverConfig(
                K=K, ff=1.0, r1=50,
                low_rank=True, oversampling=10, power_iters=2, seed=0,
            ),
            backend=BackendConfig(name="threads", size=NRANKS),
            stream=StreamConfig(source=str(path), batch=BATCH),
        )

        def job(session: Session):
            res = session.fit_stream().result()
            return res.modes, res.singular_values

        modes, values = Session.run(cfg, job)[0]

    cos_map, sin_map = field.wave_patterns()[0]
    truth = {
        "seasonal": field.seasonal_pattern().ravel(),
        "travelling wave": np.column_stack(
            [cos_map.ravel(), sin_map.ravel()]
        ),
    }
    report = extract_coherent_structures(
        modes, values, ground_truth=truth, n_modes=4
    )

    print("\ncoherent structures found:")
    for line in report.summary_lines():
        print(" ", line)

    for mode in (0, 1):
        print()
        print(
            ascii_field(
                modes[:, mode].reshape(NLAT, NLON),
                title=f"Mode {mode + 1} (lat x lon)",
                height=14,
                width=64,
            )
        )


if __name__ == "__main__":
    main()
