#!/usr/bin/env python
"""SPOD spectral analysis of the synthetic pressure record.

The ERA5-like field plants a travelling wave with a 30-day period.  Plain
POD (Figure 2's analysis) finds the wave's spatial shape; SPOD additionally
pins down *at what frequency* the coherence lives — this example runs both
and cross-checks them.

Run:  python examples/spectral_analysis.py
"""

import numpy as np

from repro.analysis.pod import pod
from repro.analysis.spod import spod
from repro.data.era5_like import Era5LikeField
from repro.postprocessing.plots import ascii_lineplot


def main() -> None:
    field = Era5LikeField(
        nlat=16,
        nlon=32,
        nt=1440,          # 360 days at 6-hourly cadence
        dt_hours=6.0,
        noise_amp=0.3,
        seed=5,
    )
    dt_days = field.dt_hours / 24.0
    wave_freq = 1.0 / field.wave_period_days
    print(
        f"record: {field.nlat}x{field.nlon} grid, {field.nt} snapshots "
        f"@ {field.dt_hours:g}h;\nplanted travelling wave: period "
        f"{field.wave_period_days:g} days -> {wave_freq:.4f} cycles/day"
    )

    anomalies = field.anomaly_snapshots()

    # POD: energy ranking (what Figure 2 shows)
    pod_result = pod(anomalies, n_modes=4)
    print("\nPOD energy fractions:", np.round(pod_result.energy_fractions, 3))

    # SPOD: where in frequency the coherence lives
    result = spod(
        anomalies, dt=dt_days, n_per_block=240, overlap=0.5, n_modes=2
    )
    df = result.frequencies[1]
    # The annual cycle (period 365 d) is unresolvable by 60-day blocks and
    # leaks into the lowest bins, so mask the seasonal band before looking
    # for the wave peak — standard practice for records with a slow cycle.
    spectrum = result.energies[:, 0].copy()
    seasonal_band = result.frequencies < 1.5 * df
    spectrum[seasonal_band] = 0.0
    peak = float(result.frequencies[int(np.argmax(spectrum))])
    print(
        f"\nSPOD: {result.n_blocks} blocks, df = {df:.4f} cycles/day\n"
        f"wave-band peak at {peak:.4f} cycles/day "
        f"(planted {wave_freq:.4f}, bin width {df:.4f})"
    )
    assert abs(peak - wave_freq) <= df

    spectrum = result.energies[:, 0].copy()
    spectrum[0] = spectrum[1]  # drop the mean bin for display
    print()
    print(
        ascii_lineplot(
            {"SPOD mode-1 energy": spectrum[:40]},
            title="energy vs frequency bin (first 40 bins)",
            height=12,
            logy=True,
        )
    )

    # cross-check: the SPOD mode at the peak spans the same subspace as the
    # POD wave pair
    spod_mode = result.modes_at(peak)[:, 0]
    cos_map, sin_map = field.wave_patterns()[0]
    basis = np.column_stack(
        [
            cos_map.ravel() / np.linalg.norm(cos_map),
            sin_map.ravel() / np.linalg.norm(sin_map),
        ]
    )
    basis_q, _ = np.linalg.qr(basis)
    coeffs = basis_q.T @ spod_mode  # complex projection onto the wave plane
    alignment = float(np.linalg.norm(coeffs) / np.linalg.norm(spod_mode))
    print(f"\nSPOD peak mode alignment with planted wave pair: {alignment:.3f}")
    assert alignment > 0.9


if __name__ == "__main__":
    main()
