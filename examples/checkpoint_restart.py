#!/usr/bin/env python
"""Checkpoint/restart of an in-situ streaming analysis.

Long simulations outlive their job allocations; the in-situ SVD must too.
This example streams half of a Burgers record, checkpoints the full
resumable state (per rank, for the parallel class), "restarts the job"
(fresh objects), finishes the stream, and verifies the result is identical
to an uninterrupted run.

Run:  python examples/checkpoint_restart.py [--backend threads|self|mpi4py]

The parallel phase runs on any registered communicator backend; with
``--backend self`` the same code runs single-rank with zero communication
overhead.
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro import ParSVDSerial
from repro.api import BackendConfig, RunConfig, Session, SolverConfig, StreamConfig
from repro.smpi import BACKENDS, DEFAULT_BACKEND
from repro.data.burgers import BurgersProblem

NX, NT, K, BATCH, NRANKS = 1024, 240, 6, 40, 3


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend", choices=BACKENDS, default=DEFAULT_BACKEND
    )
    args = parser.parse_args()
    nranks = 1 if args.backend == "self" else NRANKS
    data = BurgersProblem(nx=NX, nt=NT).snapshot_matrix()
    half = NT // 2

    # ---------------- serial -------------------------------------------
    print("serial: stream -> checkpoint -> restart -> continue")
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = Path(tmp) / "serial_state"

        first_job = ParSVDSerial(K=K, ff=0.95)
        first_job.initialize(data[:, :BATCH])
        for start in range(BATCH, half, BATCH):
            first_job.incorporate_data(data[:, start : start + BATCH])
        path = first_job.save_checkpoint(ckpt)
        print(f"  checkpointed after {first_job.n_seen} snapshots -> {path}")

        second_job = ParSVDSerial.from_checkpoint(path)
        for start in range(half, NT, BATCH):
            second_job.incorporate_data(data[:, start : start + BATCH])

        reference = ParSVDSerial(K=K, ff=0.95)
        reference.initialize(data[:, :BATCH])
        for start in range(BATCH, NT, BATCH):
            reference.incorporate_data(data[:, start : start + BATCH])

        drift = np.max(np.abs(second_job.modes - reference.modes))
        print(f"  resumed vs uninterrupted: max |mode diff| = {drift:.3e}")
        assert drift < 1e-12

    # ---------------- parallel (per-rank shards) -----------------------
    print(
        f"parallel ({nranks} ranks, backend {args.backend!r}): "
        f"shard checkpoints per rank"
    )
    with tempfile.TemporaryDirectory() as tmp:
        base = Path(tmp) / "parallel_state"
        cfg = RunConfig(
            solver=SolverConfig(K=K, ff=0.95),
            backend=BackendConfig(name=args.backend, size=nranks),
            stream=StreamConfig(batch=BATCH),
        )

        def phase1(session: Session):
            # Checkpoints written through the Session embed the full
            # RunConfig, so the resume below restores solver *and*
            # backend settings from the file alone.
            session.fit_stream(data[:, :half])
            return session.save_checkpoint(base)

        shards = Session.run(cfg, phase1)
        print("  shards:", ", ".join(Path(s).name for s in shards))

        def phase2(session: Session):
            # A resumed session keeps incorporating where the checkpoint
            # stopped — fit_stream continues rather than re-initialising.
            session.fit_stream(data[:, half:])
            return session.result().singular_values

        def uninterrupted(session: Session):
            session.fit_stream(data)
            return session.result().singular_values

        resumed = Session.run(None, phase2, resume=base)[0]
        straight = Session.run(cfg, uninterrupted)[0]
        drift = np.max(np.abs(resumed - straight) / straight)
        print(f"  resumed vs uninterrupted: max rel sigma diff = {drift:.3e}")
        assert drift < 1e-12

    print("checkpoint/restart is bit-faithful for both drivers.")


if __name__ == "__main__":
    main()
