#!/usr/bin/env python
"""In-situ/online SVD: tracking a drifting system with the forget factor.

The paper motivates the streaming SVD for "applications where there is the
need to compute the SVD on the fly or online".  This example simulates a
system whose dominant coherent structure *changes* halfway through the run
and shows how the forget factor controls the trade between remembering the
full history (ff = 1) and tracking the current regime (ff < 1).

Run:  python examples/online_insitu_svd.py
"""

import numpy as np

from repro import ParSVDSerial
from repro.data.streams import function_stream


def make_regime_source(m: int, batch: int, n_batches: int, switch: int):
    """Simulated solver: emits batches whose dominant direction flips at
    ``switch`` — e.g. a flow instability changing character mid-run."""
    rng = np.random.default_rng(0)
    dir_a = rng.standard_normal(m)
    dir_a /= np.linalg.norm(dir_a)
    dir_b = rng.standard_normal(m)
    dir_b -= (dir_b @ dir_a) * dir_a  # orthogonal regime
    dir_b /= np.linalg.norm(dir_b)

    def produce(index: int):
        if index >= n_batches:
            return None
        direction = dir_a if index < switch else dir_b
        amplitudes = 10.0 * rng.standard_normal(batch)
        noise = 0.1 * rng.standard_normal((m, batch))
        return direction[:, None] * amplitudes[None, :] + noise

    return produce, dir_a, dir_b


def tracked_alignment(ff: float, produce, dir_a, dir_b, n_batches: int):
    """Stream the whole record; report the final mode-1 alignment with each
    regime direction."""
    svd = ParSVDSerial(K=3, ff=ff)
    svd.fit_stream(function_stream(produce, n_batches=n_batches))
    mode = svd.modes[:, 0]
    return abs(mode @ dir_a), abs(mode @ dir_b)


def main() -> None:
    m, batch, n_batches, switch = 1000, 20, 20, 10
    print(
        f"drifting system: {n_batches} batches of {batch} snapshots; "
        f"dominant direction flips after batch {switch}"
    )
    print("\n  ff     |mode1 . old regime|   |mode1 . new regime|")
    for ff in (1.0, 0.99, 0.95, 0.9, 0.7, 0.5):
        produce, dir_a, dir_b = make_regime_source(m, batch, n_batches, switch)
        align_a, align_b = tracked_alignment(
            ff, produce, dir_a, dir_b, n_batches
        )
        marker = "<- tracks current regime" if align_b > 0.99 else ""
        print(f"  {ff:4.2f}   {align_a:18.4f}   {align_b:19.4f}  {marker}")

    print(
        "\nff = 1.0 weighs all history equally (both regimes share the "
        "energy);\nsmaller ff forgets the pre-switch regime and locks onto "
        "the current one."
    )


if __name__ == "__main__":
    main()
