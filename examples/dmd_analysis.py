#!/usr/bin/env python
"""Dynamic mode decomposition of an oscillating flow-like field.

The paper (§2) lists DMD among the SVD-based data-driven methods its SVD
core enables.  This example builds a field with two superposed travelling
oscillations plus noise, runs exact DMD (with the library's randomized SVD
inside), and shows that DMD separates the two frequencies and predicts the
future evolution — something POD/SVD energy ranking alone cannot do.

Run:  python examples/dmd_analysis.py
"""

import numpy as np

from repro.analysis.dmd import dmd


def make_field(m=800, n=120, dt=0.1, seed=0):
    """Two *travelling* waves at distinct frequencies + noise.

    Each wave is a quadrature pair ``cos-pattern x cos(wt) + sin-pattern x
    sin(wt)`` — a genuinely 2-dimensional linear oscillation, which is what
    DMD models.  (A *standing* oscillation ``pattern x cos(wt)`` spans only
    one spatial direction and no linear map on that 1-D subspace can
    rotate it, so DMD cannot represent it — a classic DMD pitfall.)
    """
    rng = np.random.default_rng(seed)
    x = np.linspace(0, 1, m)
    f1, f2 = 0.5, 1.3  # cycles per time unit
    decay1, decay2 = -0.05, -0.2
    times = np.arange(n) * dt

    def travelling(k, freq, decay, amp):
        envelope = amp * np.exp(decay * times)
        return np.outer(np.cos(k * np.pi * x), envelope * np.cos(2 * np.pi * freq * times)) + np.outer(
            np.sin(k * np.pi * x), envelope * np.sin(2 * np.pi * freq * times)
        )

    field = (
        travelling(3, f1, decay1, 1.0)
        + travelling(7, f2, decay2, 0.5)
        + 0.005 * rng.standard_normal((m, n))
    )
    return field, times, (f1, f2), (decay1, decay2)


def main() -> None:
    field, times, true_freqs, true_decays = make_field()
    dt = times[1] - times[0]
    print(
        f"field: {field.shape[0]} dofs x {field.shape[1]} snapshots, dt={dt}"
        f"\nplanted: f={true_freqs} cycles/time, decay rates={true_decays}"
    )

    result = dmd(field, rank=6, dt=dt, low_rank=True, rng=0)

    print("\ndominant DMD modes (energy-ranked):")
    print("  idx   frequency (cyc/t)   growth rate    |amplitude|")
    for idx in result.dominant_indices(6):
        print(
            f"  {idx:3d}   {abs(result.frequencies[idx]):17.4f}"
            f"   {result.growth_rates[idx]:11.4f}"
            f"   {abs(result.amplitudes[idx]):11.4f}"
        )

    # physical modes = oscillating and not absurdly damped; the heavily
    # damped leftovers are noise fit by the extra rank
    recovered = sorted(
        {
            float(round(abs(f), 2))
            for f, g in zip(result.frequencies, result.growth_rates)
            if abs(f) > 0.05 and g > -5.0
        }
    )
    print(f"\nrecovered frequencies : {recovered}")
    print(f"planted frequencies   : {sorted(true_freqs)}")

    # in-sample reconstruction + true out-of-sample prediction
    recon = result.reconstruct(field.shape[1])
    in_err = np.linalg.norm(recon - field) / np.linalg.norm(field)
    future_t = times[-1] + np.arange(1, 21) * dt
    prediction = result.predict(future_t)
    truth, *_ = make_field(n=field.shape[1] + 20)
    future_truth = truth[:, field.shape[1] :]
    out_err = np.linalg.norm(prediction - future_truth) / np.linalg.norm(
        future_truth
    )
    print(f"\nreconstruction error (train)    : {in_err:.3e}")
    print(f"prediction error (20 steps out) : {out_err:.3e}")


if __name__ == "__main__":
    main()
