#!/usr/bin/env python
"""Weak-scaling study of the parallel randomized SVD (paper Figure 1c).

Builds the calibrated scaling model (measured local-kernel time + exact
APMOS traffic through an alpha-beta machine model), validates the traffic
formulas against the real runtime at small rank counts, and prints the
time-vs-ranks series up to 256 Theta-like nodes.

Run:  python examples/weak_scaling_study.py
"""

from repro.perf.machine import THETA_KNL
from repro.perf.scaling import WeakScalingStudy
from repro.postprocessing.plots import ascii_lineplot
from repro.postprocessing.report import format_table, scaling_report


def main() -> None:
    study = WeakScalingStudy(
        points_per_rank=1024,   # paper value
        n_snapshots=800,        # paper's Burgers snapshot count
        k=10,
        r1=50,
        machine=THETA_KNL,
        calibrate=True,
        seed=0,
    )
    print(
        "calibrated on this machine: "
        f"local compute = {study._compute_s * 1e3:.1f} ms/step"
    )

    print("\nvalidating traffic formulas against the live runtime:")
    rows = []
    for p in (1, 2, 4, 8):
        v = study.validate_traffic(p)
        ok = (
            v["measured_gather_root"] == v["model_gather_root"]
            and v["measured_bcast"] == v["model_bcast"]
        )
        rows.append(
            [p, v["model_gather_root"], v["measured_gather_root"],
             "exact" if ok else "MISMATCH"]
        )
    print(format_table(["ranks", "model_gather_B", "measured_gather_B", "check"], rows))

    counts = study.paper_rank_counts(max_nodes=256)
    result = study.run(counts)

    print()
    print(scaling_report(list(result.ranks), list(result.times)))

    print()
    print(
        ascii_lineplot(
            {"modelled": result.times, "ideal": result.ideal},
            title="weak scaling: time per APMOS step vs log2(ranks)",
            height=12,
        )
    )
    print(
        f"\nefficiency at 1 node (64 ranks)  : "
        f"{result.efficiency[counts.index(64)]:.3f}"
    )
    print(
        f"efficiency at 256 nodes (16384 r): {result.efficiency[-1]:.3f}"
    )


if __name__ == "__main__":
    main()
